"""Unit tests for the RPF data-fetching strategies (Section IV-E)."""

import random

import pytest

from repro.core import Bitmap, EncounterBasedRpf, LocalNeighborhoodRpf, make_fetch_strategy


def bitmap(size, ones):
    return Bitmap(size, set_bits=ones)


def test_factory_dispatch():
    assert isinstance(make_fetch_strategy("local"), LocalNeighborhoodRpf)
    assert isinstance(make_fetch_strategy("encounter"), EncounterBasedRpf)
    with pytest.raises(ValueError):
        make_fetch_strategy("unknown")


def test_local_rpf_prioritizes_rarest_packet():
    strategy = LocalNeighborhoodRpf(random_start=False)
    own = bitmap(4, [])
    strategy.observe_bitmap("p1", bitmap(4, [0, 1, 2]), now=0.0)
    strategy.observe_bitmap("p2", bitmap(4, [0, 1]), now=0.0)
    strategy.observe_bitmap("p3", bitmap(4, [0]), now=0.0)
    # Rarity: packet 3 missing from all three, packet 2 from two, packet 1 from one.
    assert strategy.select(own, 3) == [3, 2, 1]
    assert strategy.rarity_of(3) == 3


def test_local_rpf_excludes_outstanding_requests():
    strategy = LocalNeighborhoodRpf(random_start=False)
    own = bitmap(4, [])
    strategy.observe_bitmap("p1", bitmap(4, [0]), now=0.0)
    picks = strategy.select(own, 4, exclude=[3, 2])
    assert 3 not in picks and 2 not in picks


def test_local_rpf_without_knowledge_is_sequential_from_start():
    strategy = LocalNeighborhoodRpf(random_start=False)
    own = bitmap(5, [0])
    assert strategy.select(own, 10) == [1, 2, 3, 4]


def test_local_rpf_random_start_rotates_order():
    strategy = LocalNeighborhoodRpf(random_start=True, rng=random.Random(3))
    own = bitmap(50, [])
    picks = strategy.select(own, 5)
    assert picks[0] != 0  # with this seed the start offset is non-zero
    # consecutive from the offset, wrapping around
    offsets = [(pick - picks[0]) % 50 for pick in picks]
    assert offsets == [0, 1, 2, 3, 4]


def test_local_rpf_select_empty_when_complete():
    strategy = LocalNeighborhoodRpf()
    assert strategy.select(Bitmap.full(4), 4) == []
    assert strategy.select(bitmap(4, []), 0) == []


def test_local_rpf_forgets_departed_peer():
    strategy = LocalNeighborhoodRpf(random_start=False)
    strategy.observe_bitmap("p1", bitmap(4, [0]), now=0.0)
    strategy.forget_peer("p1")
    assert strategy.known_bitmaps() == []
    assert strategy.neighborhood_size == 0


def test_local_rpf_reset_encounter_clears_all_state():
    strategy = LocalNeighborhoodRpf(random_start=False)
    strategy.observe_bitmap("p1", bitmap(4, [0]), now=0.0)
    strategy.observe_bitmap("p2", bitmap(4, [1]), now=0.0)
    strategy.reset_encounter()
    assert strategy.known_bitmaps() == []


def test_encounter_rpf_keeps_history_across_encounters():
    strategy = EncounterBasedRpf(history=10, random_start=False)
    strategy.observe_bitmap("p1", bitmap(4, [0]), now=0.0)
    strategy.reset_encounter()
    strategy.forget_peer("p1")
    assert len(strategy.known_bitmaps()) == 1  # history survives disconnection


def test_encounter_rpf_history_is_bounded():
    strategy = EncounterBasedRpf(history=3, random_start=False)
    for index in range(6):
        strategy.observe_bitmap(f"p{index}", bitmap(4, [0]), now=float(index))
    assert len(strategy.known_bitmaps()) == 3
    assert strategy.remembered_peers == ["p3", "p4", "p5"]


def test_encounter_rpf_repeat_encounter_updates_bitmap():
    strategy = EncounterBasedRpf(history=5, random_start=False)
    strategy.observe_bitmap("p1", bitmap(4, [0]), now=0.0)
    strategy.observe_bitmap("p1", bitmap(4, [0, 1, 2]), now=1.0)
    assert len(strategy.known_bitmaps()) == 1
    assert strategy.known_bitmaps()[0].count() == 3


def test_encounter_rpf_rarity_over_history():
    strategy = EncounterBasedRpf(history=5, random_start=False)
    strategy.observe_bitmap("p1", bitmap(3, [0, 1]), now=0.0)
    strategy.observe_bitmap("p2", bitmap(3, [0]), now=1.0)
    own = bitmap(3, [])
    assert strategy.select(own, 3) == [2, 1, 0]


def test_encounter_rpf_validates_history():
    with pytest.raises(ValueError):
        EncounterBasedRpf(history=0)


def test_encounter_rpf_state_size_grows_with_history():
    strategy = EncounterBasedRpf(history=10)
    strategy.observe_bitmap("p1", bitmap(800, []), now=0.0)
    strategy.observe_bitmap("p2", bitmap(800, []), now=0.0)
    assert strategy.state_size_bytes == 2 * 100
