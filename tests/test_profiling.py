"""Tests for the profiling subsystem, --profile wiring and the perf gate."""

import json

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.__main__ import main as experiments_main
from repro.experiments.metrics import RunResult
from repro.experiments.runner import run_protocol_trial
from repro.profiling import Profiler, format_profile, merge_profiles


def test_profiler_counters_and_timers():
    profiler = Profiler()
    profiler.count("frames")
    profiler.count("frames", 2)
    with profiler.timer("phase"):
        pass
    snapshot = profiler.snapshot()
    assert snapshot["frames"] == 3
    assert snapshot["phase_calls"] == 1
    assert snapshot["phase_s"] >= 0.0


def test_run_profile_collected_only_when_enabled():
    config = ExperimentConfig.tiny().with_overrides(max_duration=30.0)
    plain = run_protocol_trial("dapes", config, seed=1)
    assert plain.profile == {}
    profiled = run_protocol_trial(
        "dapes", config.with_overrides(profile=True), seed=1
    )
    assert profiled.profile["engine.events"] == plain.events == profiled.events
    assert profiled.profile["wireless.frames_transmitted"] == profiled.transmissions
    assert profiled.profile["wall_clock_s"] > 0
    assert "engine.events_per_sec" in profiled.profile
    # Profiling must not change the simulation outcome (profile excluded
    # from equality by construction).
    assert profiled == plain


def test_profile_roundtrips_through_json_but_stays_optional():
    result = RunResult(protocol="dapes", seed=1, events=10)
    assert "profile" not in result.to_dict()  # unprofiled payloads unchanged
    result.profile = {"wall_clock_s": 0.5, "engine.events": 10.0}
    payload = result.to_dict()
    assert payload["profile"]["engine.events"] == 10.0
    clone = RunResult.from_dict(json.loads(json.dumps(payload)))
    assert clone.profile == result.profile


def test_merge_profiles_sums_counts_and_recomputes_rates():
    merged = merge_profiles(
        [
            {"wall_clock_s": 1.0, "engine.events": 100.0, "engine.events_per_sec": 100.0},
            {"wall_clock_s": 1.0, "engine.events": 300.0, "engine.events_per_sec": 300.0},
        ]
    )
    assert merged["engine.events"] == 400.0
    assert merged["engine.events_per_sec"] == pytest.approx(200.0)
    text = format_profile(merged)
    assert "[engine]" in text and "events_per_sec" in text


def test_cli_run_with_profile_smoke(capsys):
    code = experiments_main(
        ["run", "fig9a", "--preset", "tiny", "--trials", "1", "--quiet", "--profile",
         "--axis", "wifi_range=60"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "profile:" in out and "[wireless]" in out


# ---------------------------------------------------------------- perf gate
def _write_baseline(tmp_path, events_per_sec):
    path = tmp_path / "BENCH_fake.json"
    path.write_text(json.dumps({"events_per_sec": events_per_sec}), encoding="utf-8")
    return path


def gate_args(baseline, min_ratio):
    return [
        "perf-gate", "--baseline", str(baseline), "--min-ratio", str(min_ratio),
        "--trials", "1", "--wifi-range", "80", "--no-warmup",
    ]


def test_perf_gate_passes_against_low_baseline(tmp_path, capsys):
    baseline = _write_baseline(tmp_path, events_per_sec=1.0)
    assert experiments_main(gate_args(baseline, 0.75)) == 0
    assert "perf-gate: OK" in capsys.readouterr().out


def test_perf_gate_fails_on_regression(tmp_path, capsys):
    baseline = _write_baseline(tmp_path, events_per_sec=1e12)
    assert experiments_main(gate_args(baseline, 0.75)) == 1
    assert "FAIL" in capsys.readouterr().out


def test_perf_gate_requires_baseline_file(tmp_path):
    with pytest.raises(SystemExit):
        experiments_main(gate_args(tmp_path / "missing.json", 0.75))
