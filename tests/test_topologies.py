"""Tests for the pluggable topology registry and the shipped layouts."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    available_topologies,
    get_topology,
    run_protocol_trial,
)
from repro.experiments.scenario import build_dapes_scenario
from repro.experiments.topology import (
    ClusteredTopology,
    CorridorTopology,
    QuadrantTopology,
    Topology,
    register_topology,
)
from repro.simulation import Simulator


def test_registry_ships_the_paper_topology_plus_new_workloads():
    names = available_topologies()
    assert "quadrant" in names
    assert "clusters" in names
    assert "corridor" in names
    assert isinstance(get_topology("quadrant"), QuadrantTopology)
    assert isinstance(get_topology("clusters"), ClusteredTopology)
    assert isinstance(get_topology("corridor"), CorridorTopology)


def test_unknown_topology_rejected():
    with pytest.raises(ValueError):
        get_topology("moebius-strip")
    with pytest.raises(ValueError):
        build_dapes_scenario(ExperimentConfig.tiny().with_overrides(topology="nope"), seed=1)


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError):

        @register_topology("quadrant")
        class Duplicate(Topology):  # pragma: no cover - never instantiated
            def build_mobility(self, config, sim, names):
                raise NotImplementedError


def test_node_names_cover_all_roles():
    config = ExperimentConfig.small()
    names = get_topology("quadrant").node_names(config)
    assert len(names["stationary"]) == config.stationary_nodes
    assert len(names["downloaders"]) == config.mobile_downloaders
    assert len(names["pure"]) == config.pure_forwarders
    assert len(names["intermediate"]) == config.intermediate_nodes


def test_clusters_confine_mobile_nodes_to_their_cell():
    config = ExperimentConfig.small()
    topology = get_topology("clusters")
    sim = Simulator(seed=5)
    names = topology.node_names(config)
    mobility = topology.build_mobility(config, sim, names)
    cell = config.area_size / ClusteredTopology.GRID
    mobile = topology.mobile_ids(names)
    for node_id in mobile:
        home = None
        for when in (0.0, 50.0, 200.0, 400.0):
            p = mobility.position(node_id, when)
            cell_key = (min(int(p.x // cell), 1), min(int(p.y // cell), 1))
            if home is None:
                home = cell_key
            assert cell_key == home, f"{node_id} left its home cell at t={when}"


def test_corridor_repositories_form_a_chain_on_the_midline():
    config = ExperimentConfig.small()
    topology = get_topology("corridor")
    sim = Simulator(seed=5)
    names = topology.node_names(config)
    mobility = topology.build_mobility(config, sim, names)
    xs = []
    for node_id in names["stationary"]:
        p = mobility.position(node_id, 0.0)
        assert p.y == pytest.approx(config.area_size / 2)
        xs.append(p.x)
    assert xs == sorted(xs)
    length = config.area_size * CorridorTopology.ASPECT
    assert all(0 < x < length for x in xs)
    # Mobile nodes stay inside the strip.
    for node_id in topology.mobile_ids(names)[:4]:
        for when in (0.0, 100.0, 300.0):
            p = mobility.position(node_id, when)
            assert -1e-6 <= p.x <= length + 1e-6
            assert -1e-6 <= p.y <= config.area_size + 1e-6


@pytest.mark.parametrize("topology", ["clusters", "corridor"])
def test_new_topologies_run_end_to_end(topology):
    config = ExperimentConfig.tiny().with_overrides(topology=topology, max_duration=120.0)
    result = run_protocol_trial("dapes", config, seed=7)
    assert result.transmissions > 0
    assert result.events > 0


def test_scenario_uses_configured_topology():
    config = ExperimentConfig.tiny().with_overrides(topology="corridor")
    scenario = build_dapes_scenario(config, seed=3)
    length = config.area_size * CorridorTopology.ASPECT
    p = scenario.medium.mobility.position("repo-0", 0.0)
    assert 0 < p.x < length
    assert p.y == pytest.approx(config.area_size / 2)
