"""Unit tests for the IP substrate: netstack, UDP and the TCP-like transport."""

import pytest

from repro.ip import IpNode, IpPacket, ReliableTransport, UdpService
from repro.manet import DsdvRouting
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


def build_ip_world(positions, loss_rate=0.0, wifi_range=60.0, seed=1):
    sim = Simulator(seed=seed)
    mobility = StaticPlacement(positions)
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=wifi_range, loss_rate=loss_rate))
    nodes = {}
    for node_id in positions:
        node = IpNode(sim, medium, node_id, app_protocol="test")
        routing = DsdvRouting(update_interval=1.0)
        node.attach_routing(routing)
        routing.start()
        nodes[node_id] = node
    return sim, medium, nodes


def test_ip_packet_wire_size_includes_headers_and_source_route():
    plain = IpPacket(src="a", dst="b", protocol="udp", payload=None, payload_size=100)
    routed = IpPacket(src="a", dst="b", protocol="udp", payload=None, payload_size=100,
                      source_route=["a", "x", "b"])
    assert plain.wire_size == 120
    assert routed.wire_size == 132


def test_ip_packet_validation():
    with pytest.raises(ValueError):
        IpPacket(src="a", dst="b", protocol="udp", payload=None, payload_size=-1)
    with pytest.raises(ValueError):
        IpPacket(src="a", dst="b", protocol="udp", payload=None, payload_size=1, ttl=0)


def test_udp_single_hop_delivery():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "b": (30, 0)})
    udp_a = UdpService(nodes["a"])
    udp_b = UdpService(nodes["b"])
    received = []
    udp_b.bind(9, lambda src, payload, port: received.append((src, payload)))
    sim.run(until=3.0)  # let DSDV learn routes
    assert udp_a.send("b", 9, {"hello": 1}, 64)
    sim.run(until=4.0)
    assert received == [("a", {"hello": 1})]


def test_udp_multi_hop_forwarding_over_dsdv():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "m": (50, 0), "b": (100, 0)})
    udp_a = UdpService(nodes["a"])
    udp_b = UdpService(nodes["b"])
    received = []
    udp_b.bind(9, lambda src, payload, port: received.append(payload))
    sim.run(until=6.0)  # two update rounds so the 2-hop route propagates
    assert udp_a.send("b", 9, "via-m", 64)
    sim.run(until=8.0)
    assert received == ["via-m"]
    assert nodes["m"].packets_forwarded >= 1


def test_send_without_route_reports_drop():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "b": (500, 0)})
    udp_a = UdpService(nodes["a"])
    assert not udp_a.send("b", 9, "x", 64)
    assert nodes["a"].packets_dropped_no_route == 1


def test_delivery_failure_detected_when_next_hop_out_of_range():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "b": (30, 0)})
    sim.run(until=3.0)
    # b "walks away": replace its position beyond range, keeping stale routes at a.
    mobility = medium.mobility
    mobility.place("b", 500.0, 0.0)
    udp_a = UdpService(nodes["a"])
    assert not udp_a.send("b", 9, "x", 64)
    assert nodes["a"].link_failures == 1


def test_ttl_expiry_drops_packet():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "m": (50, 0), "b": (100, 0)})
    sim.run(until=6.0)
    packet = IpPacket(src="a", dst="b", protocol="udp", payload=(9, "x"), payload_size=16, ttl=1)
    nodes["a"].send(packet)
    sim.run(until=7.0)
    assert nodes["m"].packets_dropped_ttl >= 1


def test_reliable_transport_delivers_message():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "b": (30, 0)})
    tcp_a = ReliableTransport(nodes["a"], sim)
    tcp_b = ReliableTransport(nodes["b"], sim)
    received, delivered = [], []
    tcp_b.bind(80, lambda src, payload: received.append((src, payload)))
    sim.run(until=3.0)
    tcp_a.send_message("b", 80, {"piece": 5}, 4000, on_delivered=lambda: delivered.append(True))
    sim.run(until=8.0)
    assert received == [("a", {"piece": 5})]
    assert delivered == [True]
    assert tcp_a.segments_sent >= 3  # 4000 B splits into 3 segments
    assert tcp_b.acks_sent >= 3


def test_reliable_transport_retransmits_over_lossy_link():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "b": (30, 0)}, loss_rate=0.3, seed=7)
    tcp_a = ReliableTransport(nodes["a"], sim, initial_timeout=0.5)
    tcp_b = ReliableTransport(nodes["b"], sim)
    received = []
    tcp_b.bind(80, lambda src, payload: received.append(payload))
    sim.run(until=3.0)
    for index in range(5):
        tcp_a.send_message("b", 80, index, 1200)
    sim.run(until=30.0)
    assert sorted(received) == [0, 1, 2, 3, 4]


def test_reliable_transport_gives_up_when_destination_unreachable():
    sim, medium, nodes = build_ip_world({"a": (0, 0), "b": (500, 0)})
    tcp_a = ReliableTransport(nodes["a"], sim, initial_timeout=0.2, max_retries=2)
    failed = []
    sim.run(until=2.0)
    tcp_a.send_message("b", 80, "x", 100, on_failed=lambda: failed.append(True))
    sim.run(until=10.0)
    assert failed == [True]
    assert tcp_a.messages_failed == 1
