"""Unit tests for the wireless medium, radio and channel model."""

import pytest

from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, Frame, Radio, WirelessMedium


def build_world(positions, wifi_range=60.0, loss_rate=0.0, seed=1):
    sim = Simulator(seed=seed)
    mobility = StaticPlacement(positions)
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=wifi_range, loss_rate=loss_rate))
    radios = {node: Radio(sim, medium, node) for node in positions}
    return sim, medium, radios


def test_channel_airtime_scales_with_size():
    config = ChannelConfig(data_rate_bps=1_000_000, per_frame_overhead_s=0.0)
    assert config.airtime(1250) == pytest.approx(0.01)


def test_channel_config_validation():
    with pytest.raises(ValueError):
        ChannelConfig(data_rate_bps=0)
    with pytest.raises(ValueError):
        ChannelConfig(wifi_range=0)
    with pytest.raises(ValueError):
        ChannelConfig(loss_rate=1.5)


def test_frame_requires_positive_size():
    with pytest.raises(ValueError):
        Frame(sender="a", payload=None, size_bytes=0, kind="x")


def test_broadcast_reaches_nodes_in_range_only():
    sim, medium, radios = build_world({"a": (0, 0), "b": (30, 0), "c": (500, 0)})
    received = []
    radios["b"].on_receive = lambda frame: received.append(("b", frame.payload))
    radios["c"].on_receive = lambda frame: received.append(("c", frame.payload))
    radios["a"].broadcast("hello", 100, kind="test")
    sim.run()
    assert received == [("b", "hello")]


def test_unicast_delivered_to_destination_and_overheard_by_others():
    sim, medium, radios = build_world({"a": (0, 0), "b": (30, 0), "c": (40, 0)})
    received, overheard = [], []
    radios["b"].on_receive = lambda frame: received.append("b")
    radios["c"].on_receive = lambda frame: received.append("c")
    radios["c"].on_overhear = lambda frame: overheard.append("c")
    radios["a"].unicast("b", "data", 100, kind="test")
    sim.run()
    assert received == ["b"]
    assert overheard == ["c"]


def test_sender_does_not_hear_own_frame():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)})
    heard = []
    radios["a"].on_receive = lambda frame: heard.append("a")
    radios["a"].broadcast("x", 50, kind="test")
    sim.run()
    assert heard == []


def test_neighbours_reflect_positions():
    sim, medium, radios = build_world({"a": (0, 0), "b": (30, 0), "c": (500, 0)})
    assert medium.neighbours_of("a") == ["b"]
    assert radios["a"].neighbours() == ["b"]


def test_loss_rate_drops_frames():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)}, loss_rate=0.999, seed=5)
    received = []
    radios["b"].on_receive = lambda frame: received.append(frame)
    for _ in range(30):
        radios["a"].broadcast("x", 50, kind="test")
    sim.run()
    assert len(received) < 5
    assert medium.stats.losses > 20


def test_simultaneous_transmissions_from_two_senders_collide_at_receiver():
    sim, medium, radios = build_world({"a": (0, 0), "b": (20, 0), "x": (10, 0)})
    received = []
    radios["x"].on_receive = lambda frame: received.append(frame.sender)
    # a and x are in range of each other, so CSMA would defer; use two senders
    # that cannot hear each other (hidden terminals) but both reach x.
    sim, medium, radios = build_world({"a": (0, 0), "b": (100, 0), "x": (55, 0)}, wifi_range=60)
    radios["x"].on_receive = lambda frame: received.append(frame.sender)
    radios["a"].broadcast("from-a", 1000, kind="test")
    radios["b"].broadcast("from-b", 1000, kind="test")
    sim.run()
    assert received == []  # both corrupted at x
    assert medium.stats.collisions >= 1


def test_per_sender_transmissions_are_serialized():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)})
    received = []
    radios["b"].on_receive = lambda frame: received.append(frame.payload)
    for index in range(5):
        radios["a"].broadcast(index, 1000, kind="test")
    sim.run()
    assert received == [0, 1, 2, 3, 4]  # all delivered despite being queued back-to-back


def test_csma_defers_when_channel_is_busy():
    # a and b are in range of each other: b senses a's ongoing transmission
    # and defers, so c (in range of both) receives both frames.
    sim, medium, radios = build_world({"a": (0, 0), "b": (30, 0), "c": (15, 0)})
    received = []
    radios["c"].on_receive = lambda frame: received.append(frame.sender)
    radios["a"].broadcast("first", 2000, kind="test")
    sim.schedule(0.0001, radios["b"].broadcast, "second", 2000, "test")
    sim.run()
    assert sorted(received) == ["a", "b"]


def test_half_duplex_sender_cannot_receive_while_transmitting():
    # b transmits with a tiny radio range (a cannot hear it, so a does not
    # defer via carrier sense), while a transmits towards b: the frame reaches
    # b while b's own transmitter is busy and must be lost (half-duplex).
    sim = Simulator(seed=1)
    mobility = StaticPlacement({"a": (0, 0), "b": (50, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    radio_a = Radio(sim, medium, "a", wifi_range=100.0)
    radio_b = Radio(sim, medium, "b", wifi_range=5.0)
    received_at_b = []
    radio_b.on_receive = lambda frame: received_at_b.append(frame)
    radio_b.broadcast("long-transmission", 5000, kind="test")
    sim.schedule(0.0001, radio_a.broadcast, "towards-b", 1000, "test")
    sim.run()
    assert received_at_b == []
    assert radio_b.stats.frames_collided >= 1


def test_unicast_link_layer_retry_recovers_from_loss():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)}, loss_rate=0.4, seed=11)
    received = []
    radios["b"].on_receive = lambda frame: received.append(frame.payload)
    for index in range(20):
        radios["a"].unicast("b", index, 200, kind="test")
    sim.run()
    # With up to 3 link-layer retries virtually every unicast frame arrives.
    assert len(set(received)) >= 19


def test_stats_track_transmissions_by_kind_and_protocol():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)})
    frame = Frame(sender="a", payload="x", size_bytes=100, kind="interest", protocol="dapes")
    radios["a"].send(frame)
    sim.run()
    assert medium.stats.frames_transmitted == 1
    assert medium.stats.transmitted_by_kind["interest"] == 1
    assert medium.stats.transmitted_by_protocol["dapes"] == 1
    assert radios["a"].stats.frames_sent == 1
    assert radios["b"].stats.frames_received == 1


def test_radio_rejects_frames_from_other_senders():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)})
    frame = Frame(sender="b", payload="x", size_bytes=10, kind="test")
    with pytest.raises(ValueError):
        radios["a"].send(frame)


def test_duplicate_radio_attachment_rejected():
    sim, medium, radios = build_world({"a": (0, 0)})
    with pytest.raises(ValueError):
        Radio(sim, medium, "a")


def test_detach_prunes_unicast_retry_state():
    # A very lossy channel forces link-layer ARQ state for in-flight unicasts.
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)}, loss_rate=0.95, seed=3)
    for index in range(10):
        radios["a"].unicast("b", index, 200, kind="test")
    sim.run(until=0.004)  # far enough for losses and scheduled retries
    assert medium.unicast_retry_backlog > 0
    medium.detach("a")
    assert medium.unicast_retry_backlog == 0
    sim.run()  # pending retry events fire harmlessly after the detach


def test_detach_keeps_retry_state_of_other_nodes():
    # Two independent pairs far out of range of each other, so both make
    # progress (no cross-pair carrier sensing) and both accumulate ARQ state.
    sim, medium, radios = build_world(
        {"a": (0, 0), "b": (10, 0), "c": (500, 0), "d": (510, 0)}, loss_rate=0.95, seed=3
    )
    for index in range(10):
        radios["a"].unicast("b", index, 200, kind="test")
        radios["c"].unicast("d", index, 200, kind="test")
    sim.run(until=0.004)
    backlog = medium.unicast_retry_backlog
    assert backlog > 0
    medium.detach("a")
    remaining = medium.unicast_retry_backlog
    assert 0 < remaining < backlog  # only the a->b entries were dropped
    sim.run()


def test_detached_radio_no_longer_receives():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)})
    received = []
    radios["b"].on_receive = lambda frame: received.append(frame)
    medium.detach("b")
    radios["a"].broadcast("x", 100, kind="test")
    sim.run()
    assert received == []


def test_three_way_overlap_collision_count():
    # Three hidden senders, all audible at x, overlapping in time: every
    # reception is corrupted exactly once, so the medium records exactly 3
    # collisions (the seed's pair counting also gave 3 here; the distinction
    # shows up with half-duplex overlap, pinned below).
    sim, medium, radios = build_world(
        {"a": (0, 0), "b": (110, 0), "c": (55, 95), "x": (55, 30)}, wifi_range=65
    )
    received = []
    radios["x"].on_receive = lambda frame: received.append(frame.sender)
    for node in ("a", "b", "c"):
        radios[node].broadcast(f"from-{node}", 1000, kind="test")
    sim.run()
    assert received == []
    assert medium.stats.collisions == 3


def test_collisions_not_recounted_for_already_corrupted_receptions():
    # x is transmitting (half-duplex corrupts every overlapping reception on
    # arrival), while two hidden senders reach it.  The receptions were
    # never newly corrupted by the overlap itself, so the collision counter
    # must stay at zero — the seed double-counted one collision per pair.
    sim = Simulator(seed=1)
    mobility = StaticPlacement({"a": (0, 0), "b": (110, 0), "x": (55, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    radio_a = Radio(sim, medium, "a", wifi_range=60.0)
    radio_b = Radio(sim, medium, "b", wifi_range=60.0)
    radio_x = Radio(sim, medium, "x", wifi_range=5.0)
    radio_x.broadcast("own-long-transmission", 8000, kind="test")
    sim.schedule(0.0001, radio_a.broadcast, "from-a", 1000, "test")
    sim.schedule(0.0001, radio_b.broadcast, "from-b", 1000, "test")
    sim.run()
    assert radio_x.stats.frames_collided == 2  # both lost to half-duplex
    assert medium.stats.collisions == 0  # ...but no newly-corrupted overlap


def test_node_ids_returns_cached_tuple_invalidated_on_membership_change():
    sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)})
    first = medium.node_ids
    assert first == ("a", "b")
    assert medium.node_ids is first  # cached until membership changes
    assert medium._index.node_ids == ("a", "b")
    assert medium._index.node_ids is medium._index.node_ids
    Radio(sim, medium, "c")
    assert medium.node_ids == ("a", "b", "c")
    medium.detach("b")
    assert medium.node_ids == ("a", "c")
    assert medium._index.node_ids == ("a", "c")


def test_detach_retry_index_cleans_both_endpoints():
    sim, medium, radios = build_world(
        {"a": (0, 0), "b": (10, 0), "c": (500, 0), "d": (510, 0)}, loss_rate=0.95, seed=3
    )
    for index in range(10):
        radios["a"].unicast("b", index, 200, kind="test")
        radios["c"].unicast("d", index, 200, kind="test")
    sim.run(until=0.004)
    assert medium.unicast_retry_backlog > 0
    assert set(medium._retry_index) <= {"a", "b", "c", "d"}
    medium.detach("b")  # detaching the *destination* drops the a<->b state too
    assert "a" not in medium._retry_index and "b" not in medium._retry_index
    for state in medium._unicast_retries.values():
        assert state.sender in ("c", "d") and state.destination in ("c", "d")
    sim.run()
    # Everything resolved or expired: the per-node index fully drains.
    assert medium.unicast_retry_backlog == 0
    assert medium._retry_index == {}


def test_per_radio_range_override():
    sim = Simulator(seed=1)
    mobility = StaticPlacement({"a": (0, 0), "b": (80, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    long_range = Radio(sim, medium, "a", wifi_range=100.0)
    normal = Radio(sim, medium, "b")
    received = []
    normal.on_receive = lambda frame: received.append(frame)
    long_range.broadcast("far", 100, kind="test")
    sim.run()
    assert len(received) == 1
