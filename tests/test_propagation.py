"""Tests for the pluggable propagation layer.

Four pillars, mirroring how the delivery and spatial-index refactors are
pinned:

* **Registry & validation** — model selection, parameter validation and the
  cell-sizing consistency checks in :class:`ChannelConfig`.
* **unit_disk equivalence** — the generic model-filter path must be
  byte-identical to the trivial seed fast path, asserted micro-world- and
  registered-spec-level via a test-only non-trivial unit-disk subclass.
* **log_distance determinism** — rerunning a trial, reordering link
  queries, and serial-vs-parallel sweeps must all agree.
* **obstacle occlusion** — geometry, the per-pair cache (hits, coordinate
  validation, mobility-version invalidation) and lossy wall penetration.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import ExperimentConfig, run_protocol_trial
from repro.experiments.sweep import run_experiment
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import (
    ChannelConfig,
    Environment,
    Obstacle,
    Radio,
    UnitDiskPropagation,
    WirelessMedium,
    available_propagation_models,
    build_propagation,
    register_propagation,
    segments_intersect,
)
from repro.wireless.propagation import (
    LogDistancePropagation,
    ObstaclePropagation,
    propagation_max_range,
)
from repro.wireless.spatial import GridNeighborIndex, build_neighbor_index


@register_propagation("unit_disk_exact")
class ExactUnitDisk(UnitDiskPropagation):
    """unit_disk forced through the generic per-link evaluation path."""

    trivial = False


# ================================================== registry and validation
def test_registry_ships_all_three_models():
    names = available_propagation_models()
    assert {"unit_disk", "log_distance", "obstacle"} <= set(names)


def test_unknown_model_and_bad_params_raise_at_config_time():
    with pytest.raises(ValueError, match="unknown propagation model"):
        ChannelConfig(propagation="warp-drive")
    with pytest.raises(ValueError, match="does not accept parameter"):
        ChannelConfig(propagation="unit_disk", propagation_params={"exponent": 2.0})
    with pytest.raises(ValueError, match="exponent"):
        ChannelConfig(propagation="log_distance", propagation_params={"exponent": -1.0})
    with pytest.raises(ValueError, match="cutoff"):
        ChannelConfig(propagation="log_distance", propagation_params={"cutoff": 0.9})
    with pytest.raises(ValueError, match="occluded_loss"):
        ChannelConfig(propagation="obstacle", propagation_params={"occluded_loss": 2.0})


def test_config_max_range_follows_the_model():
    assert ChannelConfig(wifi_range=60.0).max_range() == 60.0
    config = ChannelConfig(
        wifi_range=60.0, propagation="log_distance", propagation_params={"cutoff": 1.5}
    )
    assert config.max_range() == pytest.approx(90.0)
    assert config.max_range(40.0) == pytest.approx(60.0)
    assert propagation_max_range("obstacle", {}, 80.0) == 80.0


def test_grid_cell_defaults_to_the_models_max_range():
    mobility = StaticPlacement({"a": (0.0, 0.0)})
    config = ChannelConfig(
        wifi_range=60.0, propagation="log_distance", propagation_params={"cutoff": 1.5}
    )
    index = build_neighbor_index(config, mobility, max_range=config.max_range())
    assert isinstance(index, GridNeighborIndex)
    assert index.cell_size == pytest.approx(90.0)
    # Explicit cell sizes still win when they are consistent.
    sized = build_neighbor_index(
        ChannelConfig(index_cell_size=30.0), mobility, max_range=60.0
    )
    assert sized.cell_size == 30.0


def test_inconsistent_cell_size_override_raises():
    with pytest.raises(ValueError, match="inconsistent"):
        ChannelConfig(wifi_range=100.0, index_cell_size=5.0)
    # The bound follows the model's true reach, not the nominal range.
    with pytest.raises(ValueError, match="inconsistent"):
        ChannelConfig(
            wifi_range=60.0,
            index_cell_size=9.0,
            propagation="log_distance",
            propagation_params={"cutoff": 1.5},
        )


def test_inconsistent_per_radio_range_override_raises_at_attach():
    sim = Simulator(seed=1)
    medium = WirelessMedium(sim, StaticPlacement({"a": (0.0, 0.0)}))
    with pytest.raises(ValueError, match="inconsistent wifi_range"):
        Radio(sim, medium, "a", wifi_range=-5.0)
    with pytest.raises(ValueError, match="inconsistent wifi_range"):
        Radio(sim, medium, "a", wifi_range=math.inf)


# ======================================================= unit_disk fidelity
def _micro_fingerprint(propagation, *, neighbor_index="grid", ranges=None, seed=5):
    """A small mobile-free world driven to completion; every observable."""
    sim = Simulator(seed=seed)
    positions = {
        "a": (0.0, 0.0), "b": (40.0, 0.0), "c": (80.0, 0.0),
        "d": (40.0, 50.0), "e": (200.0, 200.0),
    }
    medium = WirelessMedium(
        sim,
        StaticPlacement(positions),
        ChannelConfig(
            wifi_range=60.0, loss_rate=0.2,
            neighbor_index=neighbor_index, propagation=propagation,
        ),
    )
    radios = {
        node: Radio(sim, medium, node, wifi_range=(ranges or {}).get(node))
        for node in positions
    }
    received = []
    for node, radio in radios.items():
        radio.on_receive = lambda frame, node=node: received.append((node, frame.sender))
    for index, node in enumerate(("a", "b", "c", "d")):
        for burst in range(3):
            sim.schedule_call(0.001 * index + 0.004 * burst, radios[node].broadcast,
                              f"{node}-{burst}", 800, "t")
        radios[node].unicast("b" if node != "b" else "a", f"u-{node}", 400, kind="t")
    sim.run()
    return {
        "events": sim.events_processed,
        "now": sim.now,
        "stats": medium.stats.as_dict(),
        "received": received,
        "neighbours": {node: medium.neighbours_of(node) for node in positions},
    }


def test_generic_path_matches_trivial_fast_path_micro():
    assert _micro_fingerprint("unit_disk") == _micro_fingerprint("unit_disk_exact")


def test_generic_path_matches_trivial_fast_path_with_range_overrides():
    ranges = {"a": 100.0, "b": 20.0, "c": 75.0}
    assert _micro_fingerprint("unit_disk", ranges=ranges) == _micro_fingerprint(
        "unit_disk_exact", ranges=ranges
    )


def _spec_fingerprint(name, propagation, workers=None):
    config = ExperimentConfig.tiny().with_overrides(
        max_duration=60.0, propagation=propagation
    )
    axes = {"wifi_range": (60.0,)} if name == "fig9a" else None
    return run_experiment(name, config, axes=axes, workers=workers).to_json()


@pytest.mark.parametrize("name", ["fig9a", "fig10"])
def test_registered_specs_byte_identical_across_unit_disk_paths(name):
    assert _spec_fingerprint(name, "unit_disk") == _spec_fingerprint(name, "unit_disk_exact")


# =============================================== grid vs brute equivalence
@pytest.mark.parametrize("propagation", ["unit_disk", "unit_disk_exact", "log_distance", "obstacle"])
def test_micro_world_identical_across_spatial_backends(propagation):
    ranges = {"a": 100.0, "b": 20.0, "d": 75.0}
    assert _micro_fingerprint(propagation, neighbor_index="grid", ranges=ranges) == \
        _micro_fingerprint(propagation, neighbor_index="brute", ranges=ranges)


@pytest.mark.parametrize("propagation", ["unit_disk", "log_distance", "obstacle"])
def test_urban_trial_identical_across_spatial_backends(propagation):
    results = {}
    for backend in ("grid", "brute"):
        config = ExperimentConfig.tiny().with_overrides(
            topology="urban_grid", max_duration=90.0,
            neighbor_index=backend, propagation=propagation,
        )
        results[backend] = run_protocol_trial("dapes", config, seed=11)
    assert results["grid"] == results["brute"]
    assert results["grid"].transmissions > 0


# ==================================================== log_distance physics
def test_log_distance_trials_are_deterministic():
    config = ExperimentConfig.tiny().with_overrides(
        max_duration=90.0, propagation="log_distance",
        propagation_params={"exponent": 3.0, "sigma": 0.3, "cutoff": 1.25},
    )
    first = run_protocol_trial("dapes", config, seed=13)
    second = run_protocol_trial("dapes", config, seed=13)
    assert first == second
    assert first.transmissions > 0


def test_log_distance_serial_equals_parallel():
    serial = _spec_fingerprint("fig9a", "log_distance", workers=1)
    parallel = _spec_fingerprint("fig9a", "log_distance", workers=2)
    assert serial == parallel


def test_log_distance_link_quality_is_query_order_independent():
    def build(seed=21):
        sim = Simulator(seed=seed)
        model = build_propagation(
            ChannelConfig(propagation="log_distance", propagation_params={"sigma": 0.4}),
            sim=sim,
        )
        return model

    pairs = [("a", "b"), ("c", "d"), ("a", "c"), ("b", "d")]
    quality = {}
    for pair in pairs:
        quality[pair] = build().link_quality((0, 0), (50, 0), 50.0, 60.0, None, pair)
    reordered = {}
    model = build()
    for pair in reversed(pairs):
        reordered[pair] = model.link_quality((0, 0), (50, 0), 50.0, 60.0, None, pair)
    assert quality == reordered
    # Shadowing is symmetric: the pair, not the direction, owns the factor.
    assert model.link_quality((0, 0), (50, 0), 50.0, 60.0, None, ("b", "a")) == quality[("a", "b")]
    # Different salt (seed) => different shadowing.
    other = build(seed=99).link_quality((0, 0), (50, 0), 50.0, 60.0, None, ("a", "b"))
    assert other != quality[("a", "b")]


def test_log_distance_loss_grows_with_distance_and_cuts_off():
    model = LogDistancePropagation({"exponent": 3.0, "sigma": 0.0, "cutoff": 1.25})
    near = model.link_quality((0, 0), (10, 0), 10.0, 60.0, None, ("a", "b"))
    far = model.link_quality((0, 0), (70, 0), 70.0, 60.0, None, ("a", "b"))
    assert 0.0 < near < far < 1.0
    assert model.link_quality((0, 0), (80, 0), 80.0, 60.0, None, ("a", "b")) is None
    assert model.max_range(60.0) == pytest.approx(75.0)


# ========================================================== obstacle model
def test_segment_intersection_basics():
    assert segments_intersect(0, 0, 10, 10, 0, 10, 10, 0)       # proper cross
    assert not segments_intersect(0, 0, 10, 0, 0, 5, 10, 5)     # parallel
    assert segments_intersect(0, 0, 10, 0, 5, 0, 15, 0)         # collinear overlap
    assert not segments_intersect(0, 0, 4, 0, 5, 0, 15, 0)      # collinear apart
    assert segments_intersect(0, 0, 10, 0, 5, -5, 5, 0)         # endpoint touch


def test_environment_occlusion_and_containment():
    env = Environment(obstacles=[Obstacle(20.0, 20.0, 40.0, 40.0)], walls=[(60, 0, 60, 100)])
    assert env.occludes(0, 30, 100, 30)       # through the building
    assert env.occludes(50, 30, 70, 30)       # through the free wall
    assert not env.occludes(0, 50, 50, 50)    # clear of both
    assert env.contains(30, 30)
    assert not env.contains(10, 10)
    assert bool(env)
    assert not bool(Environment())
    with pytest.raises(ValueError):
        Obstacle(10.0, 10.0, 10.0, 20.0)


def test_obstacle_model_blocks_and_penetrates():
    env = Environment(obstacles=[(40, -10, 50, 10)])
    blocked = ObstaclePropagation()
    blocked.bind(environment=env)
    assert blocked.link_quality((0, 0), (80, 0), 80.0, 100.0, None, ("a", "b")) is None
    assert blocked.link_quality((0, 20), (80, 20), 80.0, 100.0, None, ("a", "c")) == 0.0
    lossy = ObstaclePropagation({"occluded_loss": 0.8})
    lossy.bind(environment=env)
    assert lossy.link_quality((0, 0), (80, 0), 80.0, 100.0, None, ("a", "b")) == 0.8
    # No environment: pure unit-disk semantics.
    open_field = ObstaclePropagation()
    open_field.bind(environment=None)
    assert open_field.link_quality((0, 0), (80, 0), 80.0, 100.0, None, ("a", "b")) == 0.0
    assert open_field.link_quality((0, 0), (120, 0), 120.0, 100.0, None, ("a", "b")) is None


def test_occlusion_cache_hits_and_coordinate_validation():
    env = Environment(obstacles=[(40, -10, 50, 10)])
    model = ObstaclePropagation()
    model.bind(environment=env)
    assert model.link_quality((0, 0), (80, 0), 80.0, 100.0, None, ("a", "b")) is None
    assert model.occlusion_checks == 1
    # Same pair, same coordinates (either direction): served from the cache.
    assert model.link_quality((80, 0), (0, 0), 80.0, 100.0, None, ("b", "a")) is None
    assert model.occlusion_checks == 1
    assert model.occlusion_cache_hits == 1
    # The pair moved: the stale entry must not answer.
    assert model.link_quality((0, 20), (80, 20), 80.0, 100.0, None, ("a", "b")) == 0.0
    assert model.occlusion_checks == 2


def test_occlusion_cache_invalidated_by_mobility_version():
    env = Environment(obstacles=[(40, -10, 50, 10)])
    placement = StaticPlacement({"a": (0.0, 0.0), "b": (80.0, 0.0)})
    model = ObstaclePropagation()
    model.bind(environment=env, mobility=placement)
    assert model.link_quality((0, 0), (80, 0), 80.0, 100.0, None, ("a", "b")) is None
    assert model.occlusion_cache_size == 1
    # Teleport b around the building: the version bump drops the cache.
    placement.place("b", 80.0, 30.0)
    assert model.link_quality((0, 0), (80, 30), math.hypot(80, 30), 100.0, None, ("a", "b")) == 0.0
    assert model.occlusion_checks == 2
    assert model.occlusion_cache_size == 1


def test_obstacle_medium_end_to_end_blocks_and_profiles():
    env = Environment(obstacles=[(40, -10, 50, 10)])
    sim = Simulator(seed=3)
    placement = StaticPlacement({"a": (0.0, 0.0), "b": (80.0, 0.0), "c": (0.0, 30.0)})
    medium = WirelessMedium(
        sim, placement,
        ChannelConfig(wifi_range=100.0, loss_rate=0.0, propagation="obstacle"),
        environment=env,
    )
    radios = {node: Radio(sim, medium, node) for node in ("a", "b", "c")}
    received = []
    for node in ("b", "c"):
        radios[node].on_receive = lambda frame, node=node: received.append(node)
    radios["a"].broadcast("hello", 500, kind="t")
    sim.run()
    assert received == ["c"]  # b is behind the building
    assert medium.link_evaluations > 0
    assert medium.propagation.occlusion_checks > 0
    assert medium.neighbours_of("a") == ["c"]
