"""Unit tests for the DAPES namespace (Section IV-A)."""

import pytest

from repro.core import DapesNamespace
from repro.ndn import Name


def test_collection_name_includes_timestamp():
    name = DapesNamespace.collection_name("damaged-bridge", 1533783192)
    assert name == Name("/damaged-bridge-1533783192")
    assert len(name) == 1


def test_collection_name_rejects_empty_label():
    with pytest.raises(ValueError):
        DapesNamespace.collection_name("", 123)


def test_packet_name_structure():
    collection = DapesNamespace.collection_name("damaged-bridge", 1533783192)
    name = DapesNamespace.packet_name(collection, "bridge-picture", 0)
    assert name == Name("/damaged-bridge-1533783192/bridge-picture/0")


def test_packet_name_rejects_negative_sequence():
    with pytest.raises(ValueError):
        DapesNamespace.packet_name("/coll", "file", -1)


def test_parse_packet_name_roundtrip():
    parsed = DapesNamespace.parse_packet_name("/damaged-bridge-1533783192/bridge-picture/42")
    assert parsed is not None
    assert parsed.collection == "damaged-bridge-1533783192"
    assert parsed.file_name == "bridge-picture"
    assert parsed.sequence == 42
    assert parsed.to_name() == Name("/damaged-bridge-1533783192/bridge-picture/42")


def test_parse_packet_name_rejects_non_packet_names():
    assert DapesNamespace.parse_packet_name("/too/short") is None
    assert DapesNamespace.parse_packet_name("/a/b/not-a-number") is None
    assert DapesNamespace.parse_packet_name("/coll/metadata-file/abc") is None
    assert DapesNamespace.parse_packet_name("/a/b/c/d") is None


def test_metadata_name_and_detection():
    name = DapesNamespace.metadata_name("/damaged-bridge-1533783192", "a1b2c3", segment=0)
    assert DapesNamespace.is_metadata_name(name)
    assert DapesNamespace.metadata_collection(name) == "damaged-bridge-1533783192"
    assert name[-1] == "0"


def test_metadata_collection_rejects_other_names():
    with pytest.raises(ValueError):
        DapesNamespace.metadata_collection("/not/metadata")


def test_discovery_name_and_sender():
    name = DapesNamespace.discovery_name("peer-7", 3)
    assert DapesNamespace.is_discovery_name(name)
    assert DapesNamespace.discovery_sender(name) == "peer-7"
    assert not DapesNamespace.is_discovery_name("/damaged-bridge/file/0")


def test_discovery_sender_rejects_non_discovery():
    with pytest.raises(ValueError):
        DapesNamespace.discovery_sender("/other/name/x")


def test_bitmap_name_target_and_collection():
    name = DapesNamespace.bitmap_name("peer-3", "/damaged-bridge-1533783192", 9)
    assert DapesNamespace.is_bitmap_name(name)
    assert DapesNamespace.bitmap_target(name) == "peer-3"
    assert DapesNamespace.bitmap_collection(name) == "damaged-bridge-1533783192"


def test_bitmap_parsers_reject_other_names():
    with pytest.raises(ValueError):
        DapesNamespace.bitmap_target("/dapes/discovery/p/1")
    with pytest.raises(ValueError):
        DapesNamespace.bitmap_collection("/dapes/discovery/p/1")


def test_classify_covers_every_kind():
    assert DapesNamespace.classify("/dapes/discovery/p/1") == "discovery"
    assert DapesNamespace.classify("/dapes/bitmap/p/coll/1") == "bitmap"
    assert DapesNamespace.classify("/coll/metadata-file/abc/0") == "metadata"
    assert DapesNamespace.classify("/coll/file/0") == "collection-data"
