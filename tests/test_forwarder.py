"""Unit and integration tests for the NDN forwarder and strategies."""

import pytest

from repro.ndn import (
    AppFace,
    BroadcastFace,
    Data,
    Forwarder,
    ForwarderConfig,
    Interest,
    MulticastStrategy,
    Name,
    ProbabilisticSuppressionStrategy,
)
from repro.wireless import Radio


def build_pair(lossless_world):
    """Two forwarders connected over the wireless medium, app faces attached."""
    sim, mobility, medium = lossless_world
    nodes = {}
    for node_id in ("a", "b"):
        radio = Radio(sim, medium, node_id)
        forwarder = Forwarder(sim, node_id)
        app = forwarder.add_face(AppFace())
        wifi = forwarder.add_face(BroadcastFace(radio))
        nodes[node_id] = (forwarder, app, wifi)
    return sim, medium, nodes


def test_app_to_app_interest_data_exchange(lossless_world):
    sim, medium, nodes = build_pair(lossless_world)
    _, app_a, _ = nodes["a"]
    forwarder_b, app_b, _ = nodes["b"]
    app_b.on_interest = lambda interest: app_b.put_data(Data(name=interest.name, content=b"answer"))
    received = []
    app_a.on_data = received.append
    app_a.express_interest(Interest(name=Name("/test/1")))
    sim.run(until=2.0)
    assert len(received) == 1
    assert received[0].content == b"answer"


def test_data_is_cached_and_served_from_cs(lossless_world):
    sim, medium, nodes = build_pair(lossless_world)
    forwarder_a, app_a, _ = nodes["a"]
    _, app_b, _ = nodes["b"]
    app_b.on_interest = lambda interest: app_b.put_data(Data(name=interest.name, content=b"answer"))
    app_a.on_data = lambda data: None
    app_a.express_interest(Interest(name=Name("/test/1")))
    sim.run(until=2.0)
    transmissions_before = medium.stats.frames_transmitted
    # Second request is answered from a's own Content Store: nothing on the air.
    answered = []
    app_a.on_data = answered.append
    app_a.express_interest(Interest(name=Name("/test/1")))
    sim.run(until=4.0)
    assert answered and answered[0].content == b"answer"
    assert forwarder_a.stats.cs_hits_served >= 1
    assert medium.stats.frames_transmitted == transmissions_before


def test_pit_aggregation_prevents_duplicate_forwarding(sim):
    forwarder = Forwarder(sim, "n", strategy=MulticastStrategy())
    app_one = forwarder.add_face(AppFace())
    app_two = forwarder.add_face(AppFace())
    out = forwarder.add_face(AppFace())
    sent = []
    out.on_interest = sent.append
    # Two different consumers ask for the same name.
    app_one.express_interest(Interest(name=Name("/x")))
    app_two.express_interest(Interest(name=Name("/x")))
    sim.run(until=1.0)
    assert len(sent) == 1
    # Data comes back once and reaches both consumers.
    received = []
    app_one.on_data = lambda data: received.append("one")
    app_two.on_data = lambda data: received.append("two")
    out.put_data(Data(name=Name("/x"), content=b"v"))
    sim.run(until=2.0)
    assert sorted(received) == ["one", "two"]


def test_looping_interest_dropped(sim):
    forwarder = Forwarder(sim, "n", strategy=MulticastStrategy())
    face_one = forwarder.add_face(AppFace())
    face_two = forwarder.add_face(AppFace())
    interest = Interest(name=Name("/loop"))
    face_one.receive_interest(interest)
    face_two.receive_interest(interest)  # same nonce arrives from elsewhere: loop
    sim.run(until=1.0)
    assert forwarder.stats.loops_dropped == 1


def test_hop_limit_exhaustion_drops_interest(sim):
    forwarder = Forwarder(sim, "n", strategy=MulticastStrategy())
    face = forwarder.add_face(AppFace())
    exhausted = Interest(name=Name("/x"), hop_limit=1).clone_for_forwarding()
    assert exhausted.hop_limit == 0
    face.receive_interest(exhausted)
    sim.run(until=1.0)
    assert forwarder.stats.hop_limit_drops == 1


def test_unsolicited_data_dropped_unless_configured(sim):
    forwarder = Forwarder(sim, "n", config=ForwarderConfig(cache_unsolicited=False))
    face = forwarder.add_face(AppFace())
    face.put_data(Data(name=Name("/unsolicited"), content=b"x"))
    sim.run(until=1.0)
    assert forwarder.stats.unsolicited_data == 1
    assert Name("/unsolicited") not in forwarder.cs

    cached_forwarder = Forwarder(sim, "m", config=ForwarderConfig(cache_unsolicited=True))
    cached_face = cached_forwarder.add_face(AppFace())
    cached_face.put_data(Data(name=Name("/unsolicited"), content=b"x"))
    sim.run(until=2.0)
    assert Name("/unsolicited") in cached_forwarder.cs


def test_pit_entry_expires_and_notifies_strategy(sim):
    expired = []

    class RecordingStrategy(MulticastStrategy):
        def on_interest_expired(self, entry):
            expired.append(entry.name)

    forwarder = Forwarder(sim, "n", strategy=RecordingStrategy())
    face = forwarder.add_face(AppFace())
    face.express_interest(Interest(name=Name("/never-answered"), lifetime=0.5))
    sim.run(until=2.0)
    assert expired == [Name("/never-answered")]
    assert forwarder.stats.pit_expirations == 1


def test_register_prefix_and_best_route(sim):
    from repro.ndn import BestRouteStrategy

    forwarder = Forwarder(sim, "n", strategy=BestRouteStrategy())
    consumer = forwarder.add_face(AppFace())
    producer_near = forwarder.add_face(AppFace())
    producer_far = forwarder.add_face(AppFace())
    forwarder.register_prefix("/videos", producer_near, cost=1)
    forwarder.register_prefix("/videos", producer_far, cost=5)
    sent = {"near": 0, "far": 0}
    producer_near.on_interest = lambda interest: sent.__setitem__("near", sent["near"] + 1)
    producer_far.on_interest = lambda interest: sent.__setitem__("far", sent["far"] + 1)
    consumer.express_interest(Interest(name=Name("/videos/cats")))
    sim.run(until=1.0)
    assert sent == {"near": 1, "far": 0}


def test_state_size_accounts_for_tables(sim):
    forwarder = Forwarder(sim, "n")
    face = forwarder.add_face(AppFace())
    assert forwarder.state_size_bytes == 0
    face.put_data(Data(name=Name("/a"), content=b"x" * 64))
    face.express_interest(Interest(name=Name("/b")))
    sim.run(until=0.1)
    assert forwarder.state_size_bytes > 0


# ----------------------------------------------------- pure-forwarder strategy
def test_probabilistic_strategy_validation():
    with pytest.raises(ValueError):
        ProbabilisticSuppressionStrategy(forward_probability=1.5)
    with pytest.raises(ValueError):
        ProbabilisticSuppressionStrategy(min_wait=0.5, max_wait=0.1)


def test_probabilistic_strategy_zero_probability_never_forwards(lossless_world):
    sim, mobility, medium = lossless_world
    radio = Radio(sim, medium, "a")
    forwarder = Forwarder(sim, "a", strategy=ProbabilisticSuppressionStrategy(forward_probability=0.0))
    wifi = forwarder.add_face(BroadcastFace(radio))
    wifi.receive_interest(Interest(name=Name("/x")))
    sim.run(until=1.0)
    assert forwarder.stats.interests_forwarded == 0
    assert forwarder.strategy.interests_suppressed == 1


def test_probabilistic_strategy_always_forwards_with_probability_one(lossless_world):
    sim, mobility, medium = lossless_world
    radio_a = Radio(sim, medium, "a")
    radio_b = Radio(sim, medium, "b")
    heard = []
    radio_b.on_receive = lambda frame: heard.append(frame)
    forwarder = Forwarder(sim, "a", strategy=ProbabilisticSuppressionStrategy(forward_probability=1.0))
    app = forwarder.add_face(AppFace())
    forwarder.add_face(BroadcastFace(radio_a))
    app.express_interest(Interest(name=Name("/x")))
    sim.run(until=1.0)
    assert len(heard) == 1


def test_suppression_after_unanswered_interest(lossless_world):
    sim, mobility, medium = lossless_world
    radio = Radio(sim, medium, "a")
    strategy = ProbabilisticSuppressionStrategy(forward_probability=1.0, suppression_timeout=100.0)
    forwarder = Forwarder(sim, "a", strategy=strategy)
    wifi = forwarder.add_face(BroadcastFace(radio))
    app = forwarder.add_face(AppFace())
    wifi.receive_interest(Interest(name=Name("/coll/file/0"), lifetime=0.5))
    sim.run(until=2.0)
    assert strategy.suppressed_prefixes  # the forwarded Interest brought nothing back
    # A later Interest under the suppressed prefix is not forwarded.
    before = forwarder.stats.interests_forwarded
    wifi.receive_interest(Interest(name=Name("/coll/file/1"), lifetime=0.5))
    sim.run(until=3.0)
    assert forwarder.stats.interests_forwarded == before


def test_suppression_cleared_by_data(lossless_world):
    sim, mobility, medium = lossless_world
    radio = Radio(sim, medium, "a")
    strategy = ProbabilisticSuppressionStrategy(forward_probability=1.0, suppression_timeout=100.0)
    forwarder = Forwarder(sim, "a", strategy=strategy)
    wifi = forwarder.add_face(BroadcastFace(radio))
    forwarder.add_face(AppFace())  # a second face so the Interest actually gets forwarded
    wifi.receive_interest(Interest(name=Name("/coll/file/0"), lifetime=0.5))
    sim.run(until=2.0)
    assert strategy.suppressed_prefixes
    wifi.receive_data(Data(name=Name("/coll/file/0"), content=b"late"))
    sim.run(until=2.5)
    assert not strategy.suppressed_prefixes


def test_pure_forwarder_caches_overheard_data(lossless_world):
    sim, mobility, medium = lossless_world
    radio = Radio(sim, medium, "a")
    strategy = ProbabilisticSuppressionStrategy()
    forwarder = Forwarder(sim, "a", strategy=strategy)
    wifi = forwarder.add_face(BroadcastFace(radio))
    wifi.receive_data(Data(name=Name("/overheard/1"), content=b"x"))
    sim.run(until=1.0)
    assert Name("/overheard/1") in forwarder.cs
