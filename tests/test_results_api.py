"""The first-class results API: ResultStore, ResultSet queries, report/diff."""

import json
import math
import warnings

import pytest

import repro.experiments.__main__ as cli
from repro.experiments import (
    ExperimentConfig,
    ResultSet,
    ResultStore,
    RunResult,
    SweepPoint,
    SweepResult,
    get_experiment,
    run_experiment,
)
from repro.experiments import report as report_mod
from repro.experiments.metrics import aggregate_trials, mean, percentile
from repro.experiments.report import (
    IDENTICAL,
    REGRESSED,
    WITHIN_TOLERANCE,
    classify,
    diff,
    throughput_verdict,
    to_csv,
    to_gnuplot,
    to_markdown,
    to_text,
)
from repro.experiments.store import SCHEMA_VERSION, StoreSchemaError, content_key


# ----------------------------------------------------------------- fixtures
def _synthetic_sweep(download=10.0, transmissions=100.0, with_trials=True):
    sweep = SweepResult(name="synthetic", description="synthetic sweep")
    for index, wifi_range in enumerate((40.0, 80.0)):
        trials = []
        if with_trials:
            trials = [
                RunResult(
                    protocol="dapes",
                    seed=seed,
                    download_times={"a": download + index + seed / 10.0},
                    transmissions=int(transmissions) + seed,
                    duration=100.0,
                    events=50 + seed,
                    extras={"hops": 2.0 + seed},
                )
                for seed in (1, 2)
            ]
        point = SweepPoint(
            label="A",
            parameters={"wifi_range": wifi_range},
            download_time=download + index,
            transmissions=transmissions + index,
            completion_ratio=1.0,
            trials=2,
            extras={"events": 100.0 + index},
        )
        point.trial_results = trials
        sweep.add_point(point)
    return sweep


@pytest.fixture(scope="module")
def fig9a_tiny():
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=240.0)
    return run_experiment("fig9a", config, axes={"wifi_range": (80.0,)}, workers=1)


# ======================================================================= store
def test_store_save_list_load_round_trip(tmp_path, fig9a_tiny):
    store = ResultStore(tmp_path)
    spec = get_experiment("fig9a")
    config = ExperimentConfig.tiny()
    record = store.save(fig9a_tiny, spec=spec, config=config, tags=("baseline",))
    assert record.key == content_key(fig9a_tiny)
    assert record.meta["schema"] == SCHEMA_VERSION
    assert record.meta["registries"]["topology"] == "quadrant"
    assert record.meta["protocols"] == ["dapes"]
    assert record.meta["points"] == len(fig9a_tiny.points)
    assert record.created  # ISO timestamp

    [listed] = store.list(spec="fig9a")
    assert listed.key == record.key
    assert listed.tags == ["baseline"]
    assert store.load(record) == fig9a_tiny
    assert store.load("fig9a") == fig9a_tiny  # bare spec name = latest
    assert store.load("fig9a@baseline") == fig9a_tiny
    assert store.load(f"fig9a@{record.key}") == fig9a_tiny
    assert store.load(record.key) == fig9a_tiny  # bare content key


def test_store_save_is_idempotent_and_merges_tags(tmp_path, fig9a_tiny):
    store = ResultStore(tmp_path)
    first = store.save(fig9a_tiny, spec="fig9a", tags=("a",))
    second = store.save(fig9a_tiny, spec="fig9a", tags=("b",))
    assert first.key == second.key
    assert second.created == first.created  # original timestamp wins
    [record] = store.list(spec="fig9a")
    assert record.tags == ["a", "b"]


def test_store_unknown_reference_raises(tmp_path, fig9a_tiny):
    store = ResultStore(tmp_path)
    store.save(fig9a_tiny, spec="fig9a")
    with pytest.raises(KeyError):
        store.resolve("fig9a@nope")
    with pytest.raises(KeyError):
        store.resolve("nonexistent")
    with pytest.raises(KeyError):
        store.latest(spec="fig10")


def test_store_rejects_unknown_schema_version(tmp_path, fig9a_tiny):
    store = ResultStore(tmp_path)
    record = store.save(fig9a_tiny, spec="fig9a")
    payload = json.loads(record.path.read_text(encoding="utf-8"))
    payload["meta"]["schema"] = SCHEMA_VERSION + 1
    record.path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(StoreSchemaError, match="schema"):
        store.load(f"fig9a@{record.key}")


def test_store_gc_keeps_newest_and_tagged(tmp_path):
    store = ResultStore(tmp_path)
    records = []
    for index in range(4):
        sweep = _synthetic_sweep(download=10.0 + index, with_trials=False)
        tags = ("keep-me",) if index == 0 else ()
        records.append(store.save(sweep, spec="synthetic", tags=tags))
    # Distinct content → four runs stored.
    assert len(store.list(spec="synthetic")) == 4
    removed = store.gc(keep=1, spec="synthetic")
    survivors = {record.key for record in store.list(spec="synthetic")}
    # The tagged run survives regardless of age; newest 1 also survives.
    assert records[0].key in survivors
    assert len(survivors) == 4 - len(removed)
    assert all(not record.tags for record in removed)
    # Pruning tagged runs too only keeps the newest.
    store.gc(keep=1, spec="synthetic", keep_tagged=False)
    assert len(store.list(spec="synthetic")) == 1


def test_run_experiment_with_store_and_out_dir_together(tmp_path):
    """--out and --store compose: flat JSON dump plus content-addressed run."""
    config = ExperimentConfig.tiny().with_overrides(max_duration=180.0)
    out_dir = tmp_path / "out"
    result = run_experiment(
        "fig9a", config, axes={"wifi_range": (80.0,)}, workers=1,
        out_dir=out_dir, store=tmp_path / "store",
    )
    dumped = SweepResult.from_json((out_dir / "fig9a.json").read_text(encoding="utf-8"))
    assert dumped == result
    assert ResultStore(tmp_path / "store").load("fig9a") == result


def test_run_experiment_with_store_resumes_from_task_cache(tmp_path, monkeypatch):
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=180.0)
    axes = {"wifi_range": (80.0,)}
    first = run_experiment("fig9a", config, axes=axes, workers=1, store=tmp_path, tag="t1")
    import repro.experiments.sweep as sweep_module

    def forbidden(task):
        raise AssertionError("store-backed resume re-ran a cached task")

    monkeypatch.setattr(sweep_module, "_execute_task", forbidden)
    again = run_experiment("fig9a", config, axes=axes, workers=1, store=tmp_path, tag="t2")
    assert again == first
    store = ResultStore(tmp_path)
    [record] = store.list(spec="fig9a")
    assert record.tags == ["t1", "t2"]  # identical content, merged tags


# ======================================================================= query
def test_result_set_select_where_group_by(fig9a_tiny):
    results = ResultSet.from_sweep(fig9a_tiny)
    assert len(results) == 4
    assert results.select("download_time") == [p.download_time for p in fig9a_tiny.points]
    assert results.select("extras.events") == results.select("events")
    assert results.select("wifi_range") == [80.0] * 4  # parameters resolve too
    subset = results.where(rpf_strategy="local")
    assert len(subset) == 2
    assert results.where(label=fig9a_tiny.points[0].label).select("transmissions") == [
        fig9a_tiny.points[0].transmissions
    ]
    groups = results.group_by("rpf_strategy")
    assert set(groups) == {"encounter", "local"}
    assert all(len(group) == 2 for group in groups.values())


def test_result_set_series_matches_deprecated_series(fig9a_tiny):
    results = ResultSet.from_sweep(fig9a_tiny)
    with pytest.warns(DeprecationWarning):
        legacy = fig9a_tiny.series("download_time")
    assert results.series("download_time") == legacy
    with pytest.warns(DeprecationWarning):
        legacy_tx = fig9a_tiny.series("transmissions")
    assert results.series("transmissions") == legacy_tx
    # The historical two-metric limitation is gone.
    assert results.series("completion_ratio")
    assert results.series("extras.events")


def test_result_set_trial_level_metrics(fig9a_tiny):
    trials = ResultSet.from_sweep(fig9a_tiny).trials()
    assert len(trials) == sum(len(p.trial_results) for p in fig9a_tiny.points)
    assert all(value > 0 for value in trials.select("events"))
    assert trials.select("mean_download_time")
    assert trials.select("seed")
    # Trial rows inherit point parameters.
    assert set(trials.select("wifi_range")) == {80.0}
    # trials() on a trial-level set is a no-op.
    assert len(trials.trials()) == len(trials)


def test_result_set_profile_keys_selectable():
    config = ExperimentConfig.tiny().with_overrides(profile=True)
    result = run_experiment("fig9a", config, axes={"wifi_range": (80.0,)}, workers=1)
    trials = ResultSet.from_sweep(result).trials()
    key = next(k for k in trials.rows[0].metrics() if k.startswith("profile."))
    assert len(trials.select(key)) == len(trials)


def test_result_set_aggregates_reuse_metrics_helpers():
    sweep = _synthetic_sweep()
    results = ResultSet.from_sweep(sweep)
    values = results.select("download_time")
    assert results.p90("download_time") == percentile(values, 90.0)
    assert results.percentile("download_time", 50.0) == percentile(values, 50.0)
    assert results.mean("download_time") == mean(values)
    slow = ResultSet.from_sweep(_synthetic_sweep(download=20.0))
    assert slow.ratio_to(results, "download_time") == pytest.approx(
        mean(slow.select("download_time")) / mean(values)
    )
    assert slow.ratio_to(results, "download_time", aggregate="p90") == pytest.approx(
        percentile(slow.select("download_time"), 90.0) / percentile(values, 90.0)
    )
    with pytest.raises(ValueError, match="unknown aggregate"):
        results.ratio_to(slow, "download_time", aggregate="median")


def test_result_set_pivot_and_unknown_metric():
    sweep = _synthetic_sweep()
    results = ResultSet.from_sweep(sweep)
    table = results.pivot("wifi_range")
    assert table == {"A": {40.0: 10.0, 80.0: 11.0}}
    with pytest.raises(KeyError, match="unknown metric"):
        results.select("bogus_metric")
    with pytest.raises(KeyError, match="unknown extras key"):
        results.select("extras.bogus")


# ====================================================================== report
def test_to_text_matches_deprecated_summary_format(fig9a_tiny):
    rendered = to_text(fig9a_tiny)
    with pytest.warns(DeprecationWarning):
        assert fig9a_tiny.summary() == rendered
    assert rendered.startswith(f"== {fig9a_tiny.name} ==")
    # Historical fixed-width layout: 18-char right-justified columns.
    header = rendered.splitlines()[2]
    assert " | " in header and header.split(" | ")[0] == f"{'completion_ratio':>18}"


def test_exporters_cover_every_registered_spec(fig9a_tiny):
    markdown = to_markdown(fig9a_tiny)
    assert markdown.startswith(f"## {fig9a_tiny.name}")
    assert markdown.count("|") > 10
    csv_text = to_csv(fig9a_tiny)
    assert csv_text.splitlines()[0].startswith("label,")
    assert len(csv_text.splitlines()) == len(fig9a_tiny.points) + 1
    gnuplot = to_gnuplot(fig9a_tiny, axis="wifi_range", metric="transmissions")
    lines = gnuplot.splitlines()
    assert lines[1].startswith("# wifi_range")
    assert len(lines) == 3  # comment, header, one axis value


def test_diff_identical_tolerance_edge_and_regressed():
    base = _synthetic_sweep(download=100.0)
    assert diff(base, _synthetic_sweep(download=100.0)).verdict == IDENTICAL

    # 100 vs 90 on the first point: relative delta = 10/100 = 0.1 exactly —
    # the tolerance boundary is inclusive.
    shifted = _synthetic_sweep(download=90.0)
    edge = diff(base, shifted, tolerance=0.1, trial_level=False)
    assert edge.verdict == WITHIN_TOLERANCE
    assert not edge.regressions
    tight = diff(base, shifted, tolerance=0.0999, trial_level=False)
    assert tight.verdict == REGRESSED
    assert any("download_time" in entry.path for entry in tight.regressions)


def test_diff_reaches_trial_level():
    base = _synthetic_sweep()
    other = _synthetic_sweep()
    other.points[0].trial_results[1].transmissions += 7
    report = diff(base, other)
    assert report.verdict == REGRESSED
    [entry] = report.regressions
    assert "trial_results[1].transmissions" in entry.path
    # Aggregate-only diff does not see it.
    assert diff(base, other, trial_level=False).verdict == IDENTICAL


def test_diff_detects_divergent_duplicate_points():
    """Extra points sharing (label, parameters) must not verdict identical."""
    base = _synthetic_sweep()
    doubled = _synthetic_sweep()
    doubled.add_point(SweepPoint("A", {"wifi_range": 40.0}, 99.0, 1.0, 0.1, 2))
    report = diff(base, doubled, trial_level=False)
    assert report.verdict == REGRESSED
    assert any("point_count" in entry.path for entry in report.regressions)


def test_diff_flags_missing_points_and_rows_payloads():
    base = _synthetic_sweep()
    shrunk = _synthetic_sweep()
    shrunk.points = shrunk.points[:1]
    report = diff(base, SweepResult(name="s", description="d", points=shrunk.points))
    assert report.verdict == REGRESSED
    # Row-based payload (the committed BENCH shape) diffs by plan order.
    bench_like = {"name": "bench", "points": base.rows()}
    assert diff(base, bench_like).verdict == IDENTICAL
    bench_like["points"][0]["transmissions"] += 1.0
    assert diff(base, bench_like).verdict == REGRESSED


def test_classify_handles_nan_and_type_mismatch():
    assert classify(float("nan"), float("nan")) == (IDENTICAL, 0.0)
    assert classify(1.0, "1.0")[0] == REGRESSED
    assert classify(None, None) == (IDENTICAL, 0.0)
    assert classify(1.0, 1.1, tolerance=0.2)[0] == WITHIN_TOLERANCE


def test_throughput_verdict_against_committed_baseline():
    baseline = json.loads(cli.DEFAULT_GATE_BASELINE.read_text(encoding="utf-8"))
    rate = baseline["events_per_sec"]
    assert throughput_verdict(rate, rate).verdict == IDENTICAL
    assert throughput_verdict(rate * 2.0, rate).verdict == WITHIN_TOLERANCE  # faster is fine
    assert throughput_verdict(rate * 0.76, rate, 0.75).verdict == WITHIN_TOLERANCE
    assert throughput_verdict(rate * 0.75, rate, 0.75).verdict == WITHIN_TOLERANCE  # inclusive floor
    assert throughput_verdict(rate * 0.74, rate, 0.75).verdict == REGRESSED


def test_perf_gate_cli_parity_with_committed_bench():
    """perf-gate is the throughput_verdict diff against the committed BENCH."""
    argv = ["perf-gate", "--trials", "1", "--wifi-range", "80", "--no-warmup"]
    assert cli.main(argv + ["--min-ratio", "0.000001"]) == 0
    assert cli.main(argv + ["--min-ratio", "1000000"]) == 1


# ==================================================================== strict JSON
def test_nan_serializes_as_null_and_round_trips():
    incomplete = RunResult(protocol="dapes", seed=1, extras={"x": float("nan")})
    assert math.isnan(incomplete.mean_download_time)
    point = aggregate_trials("empty", {}, [incomplete], q=90.0)
    assert math.isnan(point.download_time)
    sweep = SweepResult(name="nan-sweep", description="")
    point.trial_results = [incomplete]
    sweep.add_point(point)

    text = sweep.to_json()
    assert "NaN" not in text and "Infinity" not in text
    payload = json.loads(text)  # strictly valid JSON
    assert payload["points"][0]["download_time"] is None
    assert payload["points"][0]["trial_results"][0]["extras"]["x"] is None

    restored = SweepResult.from_json(text)
    assert math.isnan(restored.points[0].download_time)
    assert math.isnan(restored.points[0].trial_results[0].extras["x"])
    # as_dict boundaries are strict too (mean_download_time can be NaN).
    assert incomplete.as_dict()["mean_download_time"] is None
    assert json.loads(json.dumps(point.as_dict(), allow_nan=False))["download_time_s"] is None


# ==================================================================== shims
SHIM_SPECS = {
    "RpfStrategyExperiment": ("repro.experiments.fig9_rpf", "fig9a"),
    "PebaExperiment": ("repro.experiments.fig9_rpf", "fig9b"),
    "BitmapsBeforeDataExperiment": ("repro.experiments.fig9_bitmaps", "fig9c"),
    "BitmapsInterleavedExperiment": ("repro.experiments.fig9_bitmaps", "fig9d"),
    "FileCountExperiment": ("repro.experiments.fig9_scaling", "fig9e"),
    "FileSizeExperiment": ("repro.experiments.fig9_scaling", "fig9f"),
    "ForwardingProbabilityExperiment": ("repro.experiments.fig9_multihop", "fig9gh"),
    "ComparisonExperiment": ("repro.experiments.fig10_comparison", "fig10"),
    "FeasibilityStudy": ("repro.experiments.table1_feasibility", "table1"),
}


def test_every_shim_forwards_to_its_registry_spec():
    """No silent drift: each deprecated class is pinned to the same-name spec."""
    import importlib

    for class_name, (module_name, spec_name) in SHIM_SPECS.items():
        shim = getattr(importlib.import_module(module_name), class_name)
        assert shim.spec is get_experiment(spec_name), class_name
        assert f"``{spec_name}``" in shim.__doc__, class_name
        with pytest.warns(DeprecationWarning, match=spec_name):
            shim(config=ExperimentConfig.tiny())


# ====================================================================== CLI
def test_cli_run_with_store_then_report_diff_export(tmp_path, capsys):
    store_dir = tmp_path / "store"
    code = cli.main([
        "run", "fig9a", "--preset", "tiny", "--workers", "1",
        "--axis", "wifi_range=80", "--store", str(store_dir), "--tag", "ci", "--quiet",
    ])
    assert code == 0
    assert "stored under" in capsys.readouterr().out

    assert cli.main(["store", "list", "--store", str(store_dir)]) == 0
    listing = capsys.readouterr().out
    assert "fig9a" in listing and "ci" in listing

    report_path = tmp_path / "report.md"
    code = cli.main([
        "report", "fig9a@ci", "--store", str(store_dir),
        "--metric", "extras.events", "-o", str(report_path),
    ])
    assert code == 0
    report_text = report_path.read_text(encoding="utf-8")
    assert "extras.events" in report_text and "config hash" in report_text

    # Self-diff: identical, exit 0; store ref vs exported JSON file both work.
    assert cli.main(["diff", "fig9a@ci", "fig9a@latest", "--store", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "verdict: identical" in out

    assert cli.main([
        "export", "fig9a@ci", "--store", str(store_dir), "--format", "gnuplot",
        "--axis", "wifi_range", "--metric", "transmissions",
    ]) == 0
    assert capsys.readouterr().out.startswith("# Fig. 9a")

    assert cli.main([
        "export", "fig9a@ci", "--store", str(store_dir), "--format", "csv",
        "--metric", "mean_download_time", "--level", "trial",
    ]) == 0
    assert "mean_download_time" in capsys.readouterr().out

    assert cli.main(["store", "gc", "--store", str(store_dir), "--keep", "0"]) == 0
    assert "0 run(s) removed" in capsys.readouterr().out  # tagged run survives


def test_cli_diff_against_committed_bench_is_identical(tmp_path, capsys):
    """The CI smoke: a fresh run diffs clean against its own persisted rows."""
    config = ExperimentConfig.tiny().with_overrides(trials=1)
    result = run_experiment("fig9a", config, axes={"wifi_range": (80.0,)}, workers=1)
    bench_path = tmp_path / "BENCH_fake.json"
    bench_path.write_text(
        json.dumps({"name": result.name, "points": result.rows()}), encoding="utf-8"
    )
    store_dir = tmp_path / "store"
    ResultStore(store_dir).save(result, spec="fig9a")
    assert cli.main(["diff", "fig9a", str(bench_path), "--store", str(store_dir)]) == 0
    assert "identical" in capsys.readouterr().out


def test_cli_diff_exit_code_on_regression(tmp_path, capsys):
    a = tmp_path / "a.json"
    b = tmp_path / "b.json"
    a.write_text(_synthetic_sweep(download=100.0).to_json(), encoding="utf-8")
    b.write_text(_synthetic_sweep(download=50.0).to_json(), encoding="utf-8")
    assert cli.main(["diff", str(a), str(b), "--format", "md"]) == 1
    assert "regressed" in capsys.readouterr().out
    assert cli.main(["diff", str(a), str(b), "--tolerance", "0.5", "--no-trials"]) == 0


def test_cli_report_and_export_accept_bare_row_lists(tmp_path, capsys):
    rows_path = tmp_path / "rows.json"
    rows_path.write_text(json.dumps(_synthetic_sweep().rows()), encoding="utf-8")
    assert cli.main(["report", str(rows_path)]) == 0
    assert "| label |" in capsys.readouterr().out
    assert cli.main(["export", str(rows_path), "--format", "csv"]) == 0
    assert capsys.readouterr().out.startswith("label,")


def test_label_is_selectable_as_a_metric(fig9a_tiny):
    results = ResultSet.from_sweep(fig9a_tiny)
    assert results.select("label") == [point.label for point in fig9a_tiny.points]
    assert "label" in results.metrics()


def test_cli_tag_requires_store():
    with pytest.raises(SystemExit, match="--tag requires --store"):
        cli.main(["run", "fig9a", "--preset", "tiny", "--tag", "x"])


def test_cli_report_missing_reference_fails_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="no stored run"):
        cli.main(["report", "fig9a", "--store", str(tmp_path)])
    with pytest.raises(SystemExit, match="not found"):
        cli.main(["report", str(tmp_path / "missing.json")])
