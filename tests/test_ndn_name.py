"""Unit tests for NDN names."""

import pytest

from repro.ndn import Name


def test_parse_from_uri_string():
    name = Name("/damaged-bridge-1533783192/bridge-picture/0")
    assert name.components == ("damaged-bridge-1533783192", "bridge-picture", "0")
    assert len(name) == 3
    assert str(name) == "/damaged-bridge-1533783192/bridge-picture/0"


def test_root_name():
    root = Name()
    assert len(root) == 0
    assert str(root) == "/"


def test_parse_ignores_duplicate_slashes():
    assert Name("//a///b/") == Name("/a/b")


def test_construct_from_components():
    assert Name(["a", "b"]) == Name("/a/b")


def test_construct_from_name_is_identity():
    name = Name("/a/b")
    assert Name(name) == name


def test_component_with_slash_rejected():
    with pytest.raises(ValueError):
        Name(["a/b"])


def test_append_components():
    name = Name("/collection").append("file", "0")
    assert name == Name("/collection/file/0")


def test_append_splits_slashes():
    assert Name("/a").append("b/c") == Name("/a/b/c")


def test_prefix_and_parent():
    name = Name("/a/b/c")
    assert name.prefix(2) == Name("/a/b")
    assert name.parent() == Name("/a/b")
    with pytest.raises(ValueError):
        Name().parent()


def test_is_prefix_of():
    assert Name("/a").is_prefix_of("/a/b/c")
    assert Name("/a/b/c").is_prefix_of("/a/b/c")
    assert not Name("/a/b/c/d").is_prefix_of("/a/b/c")
    assert not Name("/x").is_prefix_of("/a/b")
    assert Name().is_prefix_of("/anything")


def test_equality_with_string():
    assert Name("/a/b") == "/a/b"
    assert Name("/a/b") != "/a/c"


def test_hashable_and_usable_as_dict_key():
    table = {Name("/a/b"): 1}
    assert table[Name("/a/b")] == 1


def test_ordering_is_component_wise():
    assert Name("/a/b") < Name("/a/c")
    assert sorted([Name("/b"), Name("/a/z"), Name("/a")]) == [Name("/a"), Name("/a/z"), Name("/b")]


def test_indexing_and_iteration():
    name = Name("/a/b/c")
    assert name[0] == "a"
    assert name[-1] == "c"
    assert list(name) == ["a", "b", "c"]


def test_wire_size_grows_with_components():
    assert Name("/a/b/c").wire_size > Name("/a").wire_size


def test_join_helper():
    assert Name.join(["/a/b", "c", Name("/d")]) == Name("/a/b/c/d")
