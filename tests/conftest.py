"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.crypto import KeyPair, TrustAnchorStore
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def lossless_world(sim):
    """Two static nodes 20 m apart on a lossless channel (plus the medium)."""
    mobility = StaticPlacement({"a": (0.0, 0.0), "b": (20.0, 0.0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    return sim, mobility, medium


@pytest.fixture
def producer_key() -> KeyPair:
    return KeyPair.generate("/residents/producer", seed=b"producer-key")


@pytest.fixture
def trust_store(producer_key) -> TrustAnchorStore:
    store = TrustAnchorStore()
    store.add_anchor_key(producer_key)
    return store
