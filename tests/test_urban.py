"""Tests for the urban layer: street mobility, urban_grid topology, urban spec."""

from __future__ import annotations

import random

import pytest

from repro.experiments import (
    ExperimentConfig,
    available_experiments,
    available_topologies,
    get_experiment,
    get_topology,
    run_protocol_trial,
)
from repro.experiments.sweep import run_experiment
from repro.experiments.topology import UrbanGridTopology
from repro.experiments.scenario import build_dapes_scenario
from repro.mobility import StreetGridMobility
from repro.simulation import Simulator


# ========================================================== street mobility
def build_walkers(seed=7, duration=300.0):
    lines = (0.0, 100.0, 200.0, 300.0)
    return StreetGridMobility(
        xs=lines, ys=lines, min_speed=2.0, max_speed=10.0,
        rng=random.Random(seed), duration=duration,
    )


def test_street_walk_stays_on_the_street_graph():
    walkers = build_walkers()
    walkers.add_node("n0")
    walkers.add_node("n1")
    lines = set(walkers.xs)
    for node in ("n0", "n1"):
        for when in (0.0, 3.7, 42.0, 120.5, 299.0, 1000.0):
            p = walkers.position(node, when)
            # Walking an axis-aligned street keeps the other axis pinned to
            # a centreline.
            on_street = any(abs(p.x - line) < 1e-9 for line in lines) or any(
                abs(p.y - line) < 1e-9 for line in lines
            )
            assert on_street, f"{node} left the street graph at t={when}: {p}"
            assert -1e-9 <= p.x <= 300.0 + 1e-9
            assert -1e-9 <= p.y <= 300.0 + 1e-9


def test_street_walk_is_deterministic_and_query_order_independent():
    first = build_walkers(seed=3)
    second = build_walkers(seed=3)
    for walkers in (first, second):
        walkers.add_node("a")
        walkers.add_node("b")
    times = (0.0, 5.0, 17.3, 80.0, 250.0)
    forward = [(n, t, first.position(n, t)) for n in ("a", "b") for t in times]
    backward = [
        (n, t, second.position(n, t)) for n in ("b", "a") for t in reversed(times)
    ]
    table = {(n, t): p for n, t, p in backward}
    for n, t, p in forward:
        assert table[(n, t)] == p
    # A different stream draws a different walk.
    other = build_walkers(seed=4)
    other.add_node("a")
    assert any(
        other.position("a", t) != first.position("a", t) for t in times
    )


def test_street_walk_covers_duration_and_bounds_speed():
    walkers = build_walkers(duration=200.0)
    walkers.add_node("a")
    bound = walkers.speed_bound()
    assert 0.0 < bound <= 10.0 + 1e-9
    # Past its trace the node rests at its final intersection.
    resting = walkers.position("a", 10_000.0)
    assert walkers.position("a", 20_000.0) == resting


def test_street_grid_validation():
    with pytest.raises(ValueError, match="two streets"):
        StreetGridMobility((0.0,), (0.0, 10.0), 1.0, 2.0, random.Random(1), 10.0)
    with pytest.raises(ValueError, match="speed"):
        StreetGridMobility((0.0, 10.0), (0.0, 10.0), 0.0, 2.0, random.Random(1), 10.0)
    with pytest.raises(ValueError, match="duration"):
        StreetGridMobility((0.0, 10.0), (0.0, 10.0), 1.0, 2.0, random.Random(1), 0.0)


# ======================================================= urban_grid topology
def test_urban_grid_registered():
    assert "urban_grid" in available_topologies()
    assert isinstance(get_topology("urban_grid"), UrbanGridTopology)


def test_urban_grid_places_everyone_on_streets_outside_buildings():
    config = ExperimentConfig.small().with_overrides(topology="urban_grid")
    topology = get_topology("urban_grid")
    sim = Simulator(seed=9)
    names = topology.node_names(config)
    mobility = topology.build_mobility(config, sim, names)
    environment = topology.build_environment(config)
    assert environment is not None and bool(environment)
    lines, _ = topology.geometry(config)
    for node_id in names["stationary"]:
        p = mobility.position(node_id, 0.0)
        assert p.x in lines and p.y in lines  # repositories sit at intersections
    for node_id in topology.mobile_ids(names):
        for when in (0.0, 30.0, 150.0, 390.0):
            p = mobility.position(node_id, when)
            assert not environment.contains(p.x, p.y), (
                f"{node_id} walked into a building at t={when}: {p}"
            )


def test_urban_grid_environment_scales_with_density():
    topology = get_topology("urban_grid")
    blocks = topology.BLOCKS ** 2
    config = ExperimentConfig.small().with_overrides(topology="urban_grid")

    def built(density):
        env = topology.build_environment(config.with_overrides(obstacle_density=density))
        return env.obstacles

    assert built(0.0) == ()
    assert len(built(1.0)) == blocks
    half = built(0.5)
    assert 0 < len(half) < blocks
    # Densities grow the same city monotonically: lower densities are
    # prefixes of higher ones.
    assert half == built(1.0)[: len(half)]


def test_urban_scenario_threads_environment_into_the_medium():
    config = ExperimentConfig.tiny().with_overrides(
        topology="urban_grid", propagation="obstacle"
    )
    scenario = build_dapes_scenario(config, seed=3)
    assert scenario.environment is not None
    assert scenario.medium.environment is scenario.environment
    assert scenario.medium.propagation.environment is scenario.environment
    # Open-field topologies emit no environment.
    open_field = build_dapes_scenario(ExperimentConfig.tiny(), seed=3)
    assert open_field.environment is None


def test_urban_trial_profiles_occlusion_counters():
    config = ExperimentConfig.tiny().with_overrides(
        topology="urban_grid", propagation="obstacle",
        max_duration=60.0, profile=True,
    )
    result = run_protocol_trial("dapes", config, seed=5)
    assert result.profile["wireless.link_evaluations"] > 0
    assert result.profile["propagation.occlusion_checks"] > 0
    assert "propagation.occlusion_cache_hits" in result.profile


# =============================================================== urban spec
def test_urban_spec_registered_with_aliases():
    assert "urban" in available_experiments()
    spec = get_experiment("urban")
    assert get_experiment("city") is spec
    assert get_experiment("urban_grid") is spec
    assert spec.overrides["topology"] == "urban_grid"
    protocols = {variant.protocol for variant in spec.variants}
    assert protocols == {"dapes", "bithoc"}


def test_urban_spec_shows_obstacle_gap_on_the_same_seed():
    config = ExperimentConfig.tiny().with_overrides(max_duration=120.0)
    result = run_experiment("urban", config, axes={"obstacle_density": (1.0,)})
    by_label = {point.label: point for point in result.points}
    for protocol in ("DAPES", "Bithoc"):
        open_field = by_label[f"{protocol} / unit-disk"]
        walled = by_label[f"{protocol} / obstacle"]
        # Same seed, same topology, same workload: the only difference is
        # the physics — walls must measurably slow the distribution down.
        assert walled.download_time > open_field.download_time * 1.2, (
            protocol, walled.download_time, open_field.download_time,
        )


def test_urban_spec_density_zero_is_physics_independent():
    config = ExperimentConfig.tiny().with_overrides(max_duration=120.0)
    result = run_experiment("urban", config, axes={"obstacle_density": (0.0,)})
    by_label = {point.label: point for point in result.points}
    assert (
        by_label["DAPES / unit-disk"].download_time
        == by_label["DAPES / obstacle"].download_time
    )
    assert (
        by_label["Bithoc / unit-disk"].transmissions
        == by_label["Bithoc / obstacle"].transmissions
    )
