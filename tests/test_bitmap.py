"""Unit tests for the bitmap data advertisements (Section IV-D)."""

import pytest

from repro.core import Bitmap


def test_new_bitmap_is_empty():
    bitmap = Bitmap(10)
    assert bitmap.count() == 0
    assert bitmap.missing_count() == 10
    assert not bitmap.is_complete()


def test_set_get_and_clear():
    bitmap = Bitmap(10)
    bitmap.set(3)
    assert bitmap.get(3)
    assert bitmap[3]
    bitmap.set(3, False)
    assert not bitmap.get(3)


def test_out_of_range_indices_raise():
    bitmap = Bitmap(5)
    with pytest.raises(IndexError):
        bitmap.set(5)
    with pytest.raises(IndexError):
        bitmap.get(-1)


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Bitmap(-1)


def test_ones_and_missing_partition_indices():
    bitmap = Bitmap(6, set_bits=[0, 2, 4])
    assert bitmap.ones() == [0, 2, 4]
    assert bitmap.missing() == [1, 3, 5]
    assert set(bitmap.ones()) | set(bitmap.missing()) == set(range(6))


def test_full_bitmap_is_complete():
    bitmap = Bitmap.full(9)
    assert bitmap.is_complete()
    assert bitmap.count() == 9


def test_iteration_matches_bits():
    bitmap = Bitmap(4, set_bits=[1, 3])
    assert list(bitmap) == [False, True, False, True]


def test_equality_and_copy():
    a = Bitmap(12, set_bits=[1, 5, 11])
    b = a.copy()
    assert a == b
    b.set(0)
    assert a != b


def test_union_intersection_difference():
    a = Bitmap(8, set_bits=[0, 1, 2])
    b = Bitmap(8, set_bits=[2, 3])
    assert a.union(b).ones() == [0, 1, 2, 3]
    assert a.intersection(b).ones() == [2]
    assert a.difference(b).ones() == [0, 1]
    assert b.difference(a).ones() == [3]


def test_set_algebra_requires_same_size():
    with pytest.raises(ValueError):
        Bitmap(4).union(Bitmap(5))


def test_wire_encoding_roundtrip():
    bitmap = Bitmap(19, set_bits=[0, 7, 8, 18])
    decoded = Bitmap.from_bytes(19, bitmap.to_bytes())
    assert decoded == bitmap
    assert decoded.wire_size == (19 + 7) // 8


def test_wire_encoding_rejects_wrong_length():
    with pytest.raises(ValueError):
        Bitmap.from_bytes(19, b"\x00")


def test_wire_encoding_clears_padding_bits():
    payload = bytes([0xFF, 0xFF])
    bitmap = Bitmap.from_bytes(9, payload)
    assert bitmap.count() == 9  # only 9 valid bits despite 16 set bits on the wire


def test_rarity_counts_missing_across_bitmaps():
    peers = [Bitmap(4, set_bits=[0]), Bitmap(4, set_bits=[0, 1]), Bitmap(4)]
    assert Bitmap.rarity(0, peers) == 1
    assert Bitmap.rarity(1, peers) == 2
    assert Bitmap.rarity(3, peers) == 3


def test_compact_encoding_is_one_bit_per_packet():
    # The paper's point: a 10 000-packet collection fits in ~1.2 kB.
    bitmap = Bitmap(10_240)
    assert bitmap.wire_size == 1280
