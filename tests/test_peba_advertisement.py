"""Unit tests for PEBA and advertisement prioritization (Section IV-F)."""

import random

import pytest

from repro.core import Bitmap, PebaScheduler, peba_average_delay
from repro.core.advertisement import AdvertisementTracker
from repro.core.peba import (
    average_contention_window,
    bitmap_exchange_time_budget,
    slots_per_group,
)


# ----------------------------------------------------------------------- PEBA
def test_linear_prioritization_favours_useful_peers():
    scheduler = PebaScheduler(transmission_window=0.020, rng=random.Random(1))
    rich = scheduler.schedule(useful_packets=90, total_missing=100)
    poor = scheduler.schedule(useful_packets=10, total_missing=100)
    assert rich.delay < poor.delay
    assert not rich.used_backoff


def test_linear_delay_with_zero_useful_packets_is_window():
    scheduler = PebaScheduler(transmission_window=0.020, rng=random.Random(1))
    decision = scheduler.schedule(useful_packets=0, total_missing=50)
    assert decision.delay == pytest.approx(0.020)


def test_first_collision_creates_initial_slots():
    scheduler = PebaScheduler(initial_slots=2, rng=random.Random(1))
    assert scheduler.current_slots == 0
    scheduler.record_collision()
    assert scheduler.current_slots == 2
    scheduler.record_collision()
    assert scheduler.current_slots == 4


def test_slots_capped_at_max():
    scheduler = PebaScheduler(initial_slots=2, max_slots=8, rng=random.Random(1))
    for _ in range(10):
        scheduler.record_collision()
    assert scheduler.current_slots == 8


def test_backoff_groups_follow_priority_rule():
    scheduler = PebaScheduler(initial_slots=4, priority_groups=2, slot_duration=0.004, rng=random.Random(1))
    scheduler.record_collision()  # 4 slots, 2 per priority group
    high = scheduler.schedule(useful_packets=3, total_missing=6)   # >= half -> group 0
    low = scheduler.schedule(useful_packets=1, total_missing=6)    # < half  -> group 1
    assert high.used_backoff and low.used_backoff
    assert high.group == 0 and low.group == 1
    assert high.slot < 2 and 2 <= low.slot < 4
    assert low.delay > high.delay or low.slot > high.slot


def test_disabled_peba_keeps_linear_scheduling_after_collisions():
    scheduler = PebaScheduler(enabled=False, rng=random.Random(1))
    scheduler.record_collision()
    decision = scheduler.schedule(useful_packets=5, total_missing=10)
    assert not decision.used_backoff
    assert scheduler.current_slots == 0
    assert scheduler.collisions_detected == 1


def test_reset_encounter_clears_backoff_state():
    scheduler = PebaScheduler(rng=random.Random(1))
    scheduler.record_collision()
    scheduler.reset_encounter()
    assert scheduler.current_slots == 0
    assert not scheduler.schedule(1, 2).used_backoff


def test_scheduler_validation():
    with pytest.raises(ValueError):
        PebaScheduler(transmission_window=0)
    with pytest.raises(ValueError):
        PebaScheduler(initial_slots=0)
    with pytest.raises(ValueError):
        PebaScheduler(max_slots=1, initial_slots=4)


# ------------------------------------------------------------------- analysis
def test_slots_per_group_floor():
    assert slots_per_group(8, 2) == 4
    assert slots_per_group(7, 2) == 3
    assert slots_per_group(1, 4) == 1
    with pytest.raises(ValueError):
        slots_per_group(0, 1)


def test_average_contention_window_formula():
    assert average_contention_window(5) == 2.0
    assert average_contention_window(1) == 0.0


def test_peba_average_delay_formula():
    # n = L/k = 4, L_avg = 1.5, delay = (1.5-1)/2 * tau
    assert peba_average_delay(8, 2, slot_duration=0.004) == pytest.approx(0.25 * 0.004)
    # Delay never goes negative even for tiny slot tables.
    assert peba_average_delay(2, 2, slot_duration=0.004) == 0.0
    with pytest.raises(ValueError):
        peba_average_delay(4, 2, slot_duration=0)


def test_bitmap_exchange_time_budget_before_data():
    # Section IV-D: T_data = dt - (T_delay + d) * b, floor at zero.
    assert bitmap_exchange_time_budget(10.0, 4, 0.5, 0.5, interleaved=False) == pytest.approx(6.0)
    assert bitmap_exchange_time_budget(3.0, 4, 0.5, 0.5, interleaved=False) == 0.0


def test_bitmap_exchange_time_budget_interleaved():
    # Interleaving only fails when a single exchange does not fit.
    assert bitmap_exchange_time_budget(10.0, 4, 0.5, 0.5, interleaved=True) == pytest.approx(6.0)
    assert bitmap_exchange_time_budget(0.5, 4, 0.5, 0.5, interleaved=True) == 0.0
    with pytest.raises(ValueError):
        bitmap_exchange_time_budget(-1.0, 1, 0.1, 0.1, interleaved=True)


# ----------------------------------------------------------- advertisements
def test_first_bitmap_priority_is_amount_of_data():
    tracker = AdvertisementTracker()
    own = Bitmap(10, set_bits=range(8))
    priority = tracker.priority("coll", own, now=0.0)
    assert priority.is_first
    assert priority.useful_packets == 8
    assert priority.total_missing == 10


def test_subsequent_priority_counts_packets_missing_from_transmitted_union():
    tracker = AdvertisementTracker()
    first = Bitmap(10, set_bits=[0, 1, 2, 3])
    tracker.observe_transmitted_bitmap("coll", first, now=0.0)
    own = Bitmap(10, set_bits=[0, 1, 4, 5, 6])
    priority = tracker.priority("coll", own, now=1.0)
    assert not priority.is_first
    assert priority.total_missing == 6          # packets 4..9 missing from the union
    assert priority.useful_packets == 3         # we provide 4, 5, 6
    assert priority.useful_fraction == pytest.approx(0.5)


def test_union_accumulates_over_multiple_bitmaps():
    tracker = AdvertisementTracker()
    tracker.observe_transmitted_bitmap("coll", Bitmap(6, set_bits=[0, 1]), now=0.0)
    tracker.observe_transmitted_bitmap("coll", Bitmap(6, set_bits=[2, 3]), now=0.5)
    priority = tracker.priority("coll", Bitmap(6, set_bits=[4]), now=1.0)
    assert priority.total_missing == 2
    assert priority.useful_packets == 1
    assert tracker.bitmaps_heard("coll", now=1.0) == 2


def test_encounter_state_expires_after_timeout():
    tracker = AdvertisementTracker(encounter_timeout=5.0)
    tracker.observe_transmitted_bitmap("coll", Bitmap(6, set_bits=[0]), now=0.0)
    priority = tracker.priority("coll", Bitmap(6, set_bits=[1]), now=100.0)
    assert priority.is_first  # the old encounter's state no longer applies
    assert tracker.bitmaps_heard("coll", now=100.0) == 0


def test_reset_clears_state_per_collection():
    tracker = AdvertisementTracker()
    tracker.observe_transmitted_bitmap("a", Bitmap(4, set_bits=[0]), now=0.0)
    tracker.observe_transmitted_bitmap("b", Bitmap(4, set_bits=[0]), now=0.0)
    tracker.reset("a")
    assert tracker.bitmaps_heard("a", now=0.1) == 0
    assert tracker.bitmaps_heard("b", now=0.1) == 1
    tracker.reset()
    assert tracker.bitmaps_heard("b", now=0.1) == 0


def test_tracker_state_size_counts_union_bitmaps():
    tracker = AdvertisementTracker()
    tracker.observe_transmitted_bitmap("a", Bitmap(80, set_bits=[0]), now=0.0)
    assert tracker.state_size_bytes == 10
