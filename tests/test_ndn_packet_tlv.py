"""Unit tests for Interest/Data packets and the TLV wire encoding."""

import pytest

from repro.crypto import KeyPair, sign
from repro.ndn import Data, Interest, Name
from repro.ndn.tlv import (
    TlvError,
    decode_data,
    decode_interest,
    decode_name,
    decode_tlv,
    encode_data,
    encode_interest,
    encode_name,
    encode_tlv,
)


# -------------------------------------------------------------------- packets
def test_interest_defaults():
    interest = Interest(name=Name("/a/b"))
    assert interest.lifetime > 0
    assert interest.hop_limit > 0
    assert not interest.can_be_prefix
    assert interest.nonce > 0


def test_interest_nonces_are_unique():
    nonces = {Interest(name=Name("/a")).nonce for _ in range(100)}
    assert len(nonces) == 100


def test_interest_validation():
    with pytest.raises(ValueError):
        Interest(name=Name("/a"), lifetime=0)
    with pytest.raises(ValueError):
        Interest(name=Name("/a"), hop_limit=-1)
    # Zero is a legal, exhausted hop budget (forwarders drop it instead).
    assert Interest(name=Name("/a"), hop_limit=0).hop_limit == 0


def test_interest_matches_exact_and_prefix():
    data = Data(name=Name("/a/b/1"), content=b"x")
    assert Interest(name=Name("/a/b/1")).matches(data)
    assert not Interest(name=Name("/a/b")).matches(data)
    assert Interest(name=Name("/a/b"), can_be_prefix=True).matches(data)


def test_interest_clone_for_forwarding_decrements_hop_limit():
    interest = Interest(name=Name("/a"), hop_limit=5)
    clone = interest.clone_for_forwarding()
    assert clone.hop_limit == 4
    assert clone.nonce == interest.nonce
    assert clone.name == interest.name


def test_interest_wire_size_includes_application_parameters():
    plain = Interest(name=Name("/a"))
    with_params = Interest(name=Name("/a"), application_parameters=b"x" * 50, application_parameters_size=50)
    assert with_params.wire_size >= plain.wire_size + 50


def test_data_content_must_be_bytes():
    with pytest.raises(TypeError):
        Data(name=Name("/a"), content="not-bytes")


def test_data_content_size_override_controls_wire_size():
    small = Data(name=Name("/a/0"), content=b"tiny")
    modelled = Data(name=Name("/a/0"), content=b"tiny", content_size_override=1024)
    assert modelled.content_size == 1024
    assert modelled.wire_size > small.wire_size


def test_data_wire_size_includes_signature():
    key = KeyPair.generate("/p", seed=b"k")
    unsigned = Data(name=Name("/a/0"), content=b"payload")
    signed = Data(name=Name("/a/0"), content=b"payload", signature=sign("/a/0", b"payload", key))
    assert signed.wire_size > unsigned.wire_size


# ------------------------------------------------------------------------ TLV
def test_tlv_roundtrip_small_and_large_values():
    for size in (0, 10, 300, 70_000):
        encoded = encode_tlv(0x42, b"x" * size)
        type_number, value, offset = decode_tlv(encoded)
        assert type_number == 0x42
        assert value == b"x" * size
        assert offset == len(encoded)


def test_tlv_decode_truncated_buffer_raises():
    encoded = encode_tlv(0x42, b"hello")
    with pytest.raises(TlvError):
        decode_tlv(encoded[:-2])


def test_name_encoding_roundtrip():
    name = Name("/damaged-bridge-1533783192/bridge-picture/42")
    _, value, _ = decode_tlv(encode_name(name))
    assert decode_name(value) == name


def test_interest_encoding_roundtrip():
    interest = Interest(
        name=Name("/dapes/bitmap/peer-1/coll/7"),
        lifetime=1.5,
        hop_limit=7,
        can_be_prefix=True,
        application_parameters=b"\x01\x02\x03",
        application_parameters_size=3,
    )
    decoded = decode_interest(encode_interest(interest))
    assert decoded.name == interest.name
    assert decoded.nonce == interest.nonce
    assert decoded.lifetime == pytest.approx(interest.lifetime)
    assert decoded.hop_limit == interest.hop_limit
    assert decoded.can_be_prefix
    assert decoded.application_parameters == b"\x01\x02\x03"


def test_data_encoding_roundtrip_with_signature():
    key = KeyPair.generate("/producer", seed=b"p")
    data = Data(
        name=Name("/coll/file/0"),
        content=b"some-content",
        signature=sign("/coll/file/0", b"some-content", key),
        freshness_period=10.0,
    )
    decoded = decode_data(encode_data(data))
    assert decoded.name == data.name
    assert decoded.content == data.content
    assert decoded.freshness_period == pytest.approx(10.0)
    assert decoded.signature == data.signature


def test_decoding_wrong_outer_type_raises():
    interest = Interest(name=Name("/a"))
    with pytest.raises(TlvError):
        decode_data(encode_interest(interest))
    data = Data(name=Name("/a"), content=b"")
    with pytest.raises(TlvError):
        decode_interest(encode_data(data))
