"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.simulation import SimulationError, Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "late")
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(1.5, fired.append, "middle")
    sim.run()
    assert fired == ["early", "middle", "late"]


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for index in range(10):
        sim.schedule(1.0, fired.append, index)
    sim.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(3.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [3.5]
    assert sim.now == 3.5


def test_run_until_excludes_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "in")
    sim.schedule(5.0, fired.append, "out")
    sim.run(until=2.0)
    assert fired == ["in"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["in", "out"]


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "boundary")
    sim.run(until=2.0)
    assert fired == ["boundary"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert not handle.active


def test_cancel_via_simulator_handles_none():
    sim = Simulator()
    sim.cancel(None)  # must not raise


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain(step):
        fired.append(step)
        if step < 3:
            sim.schedule(1.0, chain, step + 1)

    sim.schedule(1.0, chain, 1)
    sim.run()
    assert fired == [1, 2, 3]
    assert sim.now == pytest.approx(3.0)


def test_stop_halts_processing():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: (fired.append("first"), sim.stop()))
    sim.schedule(2.0, fired.append, "second")
    sim.run()
    assert fired == ["first"]
    # The queue still holds the second event; a new run picks it up.
    sim.run()
    assert fired == ["first", "second"]


def test_max_events_limits_processing():
    sim = Simulator()
    fired = []
    for index in range(5):
        sim.schedule(index + 1.0, fired.append, index)
    sim.run(max_events=2)
    assert fired == [0, 1]


def test_events_processed_counter():
    sim = Simulator()
    for index in range(4):
        sim.schedule(1.0 + index, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_pending_events_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    assert keep.active


def test_pending_events_tracks_schedule_fire_and_cancel():
    sim = Simulator()
    handles = [sim.schedule(float(index + 1), lambda: None) for index in range(5)]
    assert sim.pending_events == 5
    handles[0].cancel()
    handles[0].cancel()  # double-cancel must not double-decrement
    assert sim.pending_events == 4
    sim.run(max_events=2)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_fire_keeps_counter_consistent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(max_events=1)
    handle.cancel()  # no-op: already fired
    assert sim.pending_events == 1


def test_pending_events_with_events_scheduled_during_run():
    sim = Simulator()

    def chain(step):
        if step < 3:
            sim.schedule(1.0, chain, step + 1)

    sim.schedule(1.0, chain, 1)
    sim.run()
    assert sim.pending_events == 0


def test_rng_streams_are_deterministic_across_runs():
    values_a = Simulator(seed=9).rng("test").random()
    values_b = Simulator(seed=9).rng("test").random()
    assert values_a == values_b


def test_rng_streams_differ_by_name_and_seed():
    sim = Simulator(seed=9)
    assert sim.rng("one").random() != sim.rng("two").random()
    assert Simulator(seed=1).rng("x").random() != Simulator(seed=2).rng("x").random()


def test_kwargs_passed_to_callback():
    sim = Simulator()
    seen = {}
    sim.schedule(1.0, lambda **kw: seen.update(kw), value=42)
    sim.run()
    assert seen == {"value": 42}
