"""The region-sharded medium must be invisible except in the profiler.

Three layers of contract, from geometry up to whole trials:

* unit behaviour — :class:`RegionPartition` stripe arithmetic,
  :class:`EpochClock` barrier/sequence allocation and the
  :class:`ShardExecutor` fallback ladder are each deterministic;
* index equivalence — a sharded index returns *exactly* the neighbor lists
  (including order) of the brute-force reference, property-style over random
  worlds, shard counts, epochs and region widths, through churn
  (attach/detach) and cross-shard migration, in every executor mode;
* run byte-identity — a sharded trial is byte-identical to an unsharded one
  on committed specs, with churn and faults armed, including boundary events
  interleaved at identical timestamps and nodes migrating across shard
  boundaries mid-transfer.
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import numpy_available
from repro.experiments import ExperimentConfig, run_protocol_trial
from repro.faults import SHARD, FaultEpisode, FaultManager, FaultModel, FaultPlan, PARTITION
from repro.faults.partition import Partition
from repro.mobility import (
    CompositeMobility,
    RandomDirectionMobility,
    ScriptedMobility,
    StaticPlacement,
)
from repro.simulation import EpochClock, Simulator
from repro.wireless import ChannelConfig, Radio, RegionPartition, WirelessMedium
from repro.wireless.sharded import ShardedNeighborIndex, ShardExecutor, partition_for_config
from repro.wireless.spatial import BruteForceNeighborIndex, build_neighbor_index

AREA = 200.0


# ================================================================= geometry
def test_region_partition_stripes_deal_modulo_shards():
    partition = RegionPartition(3, 50.0)
    assert [partition.stripe_of(x) for x in (0.0, 49.9, 50.0, 149.9)] == [0, 0, 1, 2]
    assert [partition.shard_of(x) for x in (0.0, 50.0, 100.0, 150.0)] == [0, 1, 2, 0]
    # Total over an unbounded world: wanderers west of the origin still map.
    assert partition.shard_of(-0.1) == 2  # stripe -1 -> shard 2


def test_region_partition_overlap_window_is_ascending_and_complete():
    partition = RegionPartition(4, 50.0)
    assert partition.shards_overlapping(75.0, 10.0) == (1,)
    assert partition.shards_overlapping(75.0, 30.0) == (0, 1, 2)
    assert partition.shards_overlapping(5.0, 10.0) == (0, 3)  # wraps west
    # A reach spanning >= K stripes must scan everything, exactly once each.
    assert partition.shards_overlapping(0.0, 1e6) == (0, 1, 2, 3)


def test_region_partition_validation():
    with pytest.raises(ValueError):
        RegionPartition(0, 50.0)
    with pytest.raises(ValueError):
        RegionPartition(2, 0.0)
    with pytest.raises(ValueError):
        RegionPartition(2, math.inf)


def test_partition_for_config_defaults_to_reach_sized_regions():
    config = ChannelConfig(wifi_range=80.0, shards=3)
    partition = partition_for_config(config)
    assert (partition.shards, partition.region_width) == (3, config.max_range())
    explicit = partition_for_config(ChannelConfig(shards=2, shard_region_width=25.0))
    assert (explicit.shards, explicit.region_width) == (2, 25.0)


# =============================================================== epoch clock
def test_epoch_clock_advances_only_across_barriers():
    clock = EpochClock(2.0)
    assert clock.advance(0.0) is True  # first observation rolls
    assert clock.advance(1.9) is False  # same epoch
    assert clock.advance(2.0) is True
    assert clock.advance(1.0) is False  # queries into the past never re-roll
    assert clock.rolls == 2


def test_epoch_clock_force_roll_rolls_at_the_next_observation():
    clock = EpochClock(1.0)
    clock.advance(5.0)
    clock.force_roll()
    assert clock.advance(5.0) is True  # same timestamp, but forced
    assert clock.rolls == 2


def test_epoch_clock_sequence_allocates_disjoint_per_shard_keys():
    clock = EpochClock(1.0)
    clock.advance(7.0)
    keys = [clock.sequence(shard, 4) for shard in range(4)]
    assert keys == sorted(keys) and len(set(keys)) == 4
    later = EpochClock(1.0)
    later.advance(8.0)
    # A later epoch's keys sort strictly after every earlier-epoch key.
    assert later.sequence(0, 4) > keys[-1]
    with pytest.raises(ValueError):
        clock.sequence(4, 4)


# ================================================================= executor
def _square(value):
    return value * value


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
def test_shard_executor_preserves_task_order(mode):
    executor = ShardExecutor(mode, workers=3)
    tasks = [(_square, (value,)) for value in range(7)]
    assert executor.run(tasks) == [value * value for value in range(7)]
    if mode != "serial" and executor.mode == mode:  # no environment fallback
        assert executor.parallel_barriers == 1
    executor.close()


def test_shard_executor_degrades_to_serial_for_single_worker():
    executor = ShardExecutor("thread", workers=1)
    assert executor.mode == "serial"
    with pytest.raises(ValueError):
        ShardExecutor("fibers", workers=2)


# ====================================================== index equivalence
def build_mobility(static_coords, mobile_count, seed):
    """A mixed world: pinned nodes plus random-direction walkers."""
    mobility = CompositeMobility()
    static = StaticPlacement()
    node_ids = []
    for index, (x, y) in enumerate(static_coords):
        node_id = f"s{index}"
        static.place(node_id, x, y)
        mobility.assign(node_id, static)
        node_ids.append(node_id)
    walkers = RandomDirectionMobility(
        width=AREA, height=AREA, min_speed=1.0, max_speed=12.0, rng=random.Random(seed)
    )
    for index in range(mobile_count):
        node_id = f"m{index}"
        walkers.add_node(node_id)
        mobility.assign(node_id, walkers)
        node_ids.append(node_id)
    return mobility, node_ids


coords = st.tuples(
    st.floats(min_value=-50.0, max_value=AREA + 50.0, allow_nan=False),
    st.floats(min_value=-50.0, max_value=AREA + 50.0, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(
    static_coords=st.lists(coords, min_size=0, max_size=6),
    mobile_count=st.integers(min_value=0, max_value=8),
    shards=st.integers(min_value=1, max_value=5),
    region_width=st.floats(min_value=10.0, max_value=150.0, allow_nan=False),
    epoch=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
    radius=st.floats(min_value=1.0, max_value=150.0, allow_nan=False),
    use_array=st.booleans(),
    times=st.lists(
        st.floats(min_value=0.0, max_value=60.0, allow_nan=False), min_size=1, max_size=6
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_sharded_matches_brute_force_for_random_worlds(
    static_coords, mobile_count, shards, region_width, epoch, radius, use_array, times, seed
):
    if use_array and not numpy_available():
        use_array = False
    mobility, node_ids = build_mobility(static_coords, mobile_count, seed)
    brute = BruteForceNeighborIndex(mobility)
    sharded = ShardedNeighborIndex(
        mobility,
        cell_size=60.0,
        shards=shards,
        region_width=region_width,
        epoch=epoch,
        use_array=use_array,
        scalar_query_limit=1 if use_array else 256,
    )
    for node_id in node_ids:
        brute.attach(node_id)
        sharded.attach(node_id)
    for when in times:
        for node_id in node_ids:
            expected = brute.neighbors(node_id, radius, when)
            assert sharded.neighbors(node_id, radius, when) == expected


def test_backward_query_into_an_earlier_epoch_resyncs_membership():
    """Regression: a query far back in time must re-shard, not trust stale regions.

    A walker observed at t=15 lands in whatever region it occupies *then*;
    replaying t=0 afterwards crosses epoch boundaries backwards, where the
    per-epoch drift slack no longer bounds membership staleness.  The index
    must force an epoch roll at the queried time instead of searching the
    wrong shard (pinned falsifying example from the property test above).
    """
    mobility, node_ids = build_mobility([(0.0, 0.0)], 1, seed=7)
    brute = BruteForceNeighborIndex(mobility)
    sharded = ShardedNeighborIndex(
        mobility, cell_size=60.0, shards=3, region_width=10.0, epoch=1.0
    )
    for node_id in node_ids:
        brute.attach(node_id)
        sharded.attach(node_id)
    for when in (15.0, 0.0):
        for node_id in node_ids:
            expected = brute.neighbors(node_id, 150.0, when)
            assert sharded.neighbors(node_id, 150.0, when) == expected


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_sharded_equivalence_under_churn_in_every_executor_mode(executor):
    """Random attach/detach against brute force, stepping shards in parallel."""
    mobility, node_ids = build_mobility([(10.0, 10.0), (150.0, 80.0)], 10, seed=7)
    brute = BruteForceNeighborIndex(mobility)
    sharded = ShardedNeighborIndex(
        mobility, cell_size=60.0, shards=3, region_width=66.0, epoch=2.0,
        workers=3, executor=executor,
    )
    rng = random.Random(11)
    attached = []
    detached = list(node_ids)
    for step in range(120):
        when = step * 0.25
        action = rng.random()
        if detached and (not attached or action < 0.4):
            node_id = detached.pop(rng.randrange(len(detached)))
            brute.attach(node_id)
            sharded.attach(node_id)
            attached.append(node_id)
        elif attached and action > 0.8:
            node_id = attached.pop(rng.randrange(len(attached)))
            brute.detach(node_id)
            sharded.detach(node_id)
            detached.append(node_id)
        for node_id in attached:
            assert sharded.neighbors(node_id, 70.0, when) == brute.neighbors(
                node_id, 70.0, when
            )
    if executor != "serial" and sharded.executor.mode == executor:
        assert sharded.executor.parallel_barriers > 0
    sharded.executor.close()


def test_migration_across_shard_boundaries_is_counted_and_lossless():
    """A walker crossing region borders keeps identical neighbor results."""
    mobility = ScriptedMobility()
    mobility.add_static_node("west", 20.0, 0.0)
    mobility.add_static_node("east", 180.0, 0.0)
    mobility.add_node("walker", [(0.0, 10.0, 0.0), (20.0, 190.0, 0.0)])
    brute = BruteForceNeighborIndex(mobility)
    sharded = ShardedNeighborIndex(
        mobility, cell_size=60.0, shards=3, region_width=AREA / 3, epoch=1.0
    )
    for node_id in ("west", "east", "walker"):
        brute.attach(node_id)
        sharded.attach(node_id)
    for step in range(81):
        when = step * 0.25
        for node_id in ("west", "east", "walker"):
            assert sharded.neighbors(node_id, 80.0, when) == brute.neighbors(
                node_id, 80.0, when
            )
    # The walker crossed two stripe borders; each crossing is a handoff.
    assert sharded.shard_migrations >= 2
    assert sharded.epoch_rolls > 1
    assert sharded.shard_of("walker") == sharded.partition.shard_of(190.0)


# ===================================================== boundary interleaving
def _delivery_trace(shards, sender_xs, order, wifi_range=250.0):
    """Deliveries at a central receiver from senders firing simultaneously."""
    sim = Simulator(seed=5)
    positions = {"rx": (AREA / 2, 100.0)}
    for index, x in enumerate(sender_xs):
        positions[f"tx{index}"] = (x, 100.0)
    config = ChannelConfig(wifi_range=wifi_range, loss_rate=0.0)
    if shards > 1:
        config = ChannelConfig(
            wifi_range=wifi_range, loss_rate=0.0, shards=shards,
            shard_region_width=AREA / shards, shard_workers=2,
        )
    medium = WirelessMedium(sim, StaticPlacement(positions), config)
    radios = {node: Radio(sim, medium, node) for node in positions}
    trace = []
    for node, radio in radios.items():
        radio.on_receive = (
            lambda frame, node=node: trace.append((node, frame.sender, frame.kind))
        )
        radio.on_overhear = (
            lambda frame, node=node: trace.append((node, frame.sender, "~" + frame.kind))
        )
    for position, index in enumerate(order):
        # Every frame launches at *exactly* t=1.0: the boundary events from
        # different regions carry identical timestamps and only the global
        # (time, seq) tuple keys order them.
        sim.schedule_call(
            1.0, radios[f"tx{index}"].broadcast, f"p{position}", 400, f"k{position}"
        )
    sim.run()
    return trace


@settings(max_examples=25, deadline=None)
@given(
    shards=st.integers(min_value=2, max_value=5),
    sender_xs=st.lists(
        st.floats(min_value=0.0, max_value=AREA, allow_nan=False),
        min_size=2,
        max_size=5,
        unique=True,
    ),
    data=st.data(),
)
def test_boundary_events_at_identical_timestamps_interleave_identically(
    shards, sender_xs, data
):
    order = data.draw(st.permutations(range(len(sender_xs))))
    expected = _delivery_trace(1, sender_xs, order)
    assert expected  # senders reach the central receiver
    assert _delivery_trace(shards, sender_xs, order) == expected


def test_mid_transfer_boundary_handoff_is_byte_identical():
    """Frames keep flowing, in order, while the receiver changes shards."""

    def run(shards):
        sim = Simulator(seed=9)
        mobility = ScriptedMobility()
        mobility.add_static_node("src", 10.0, 0.0)
        mobility.add_node("walker", [(0.0, 30.0, 0.0), (20.0, 190.0, 0.0)])
        config = ChannelConfig(
            wifi_range=120.0, loss_rate=0.0, shards=shards,
            shard_region_width=AREA / 3 if shards > 1 else None,
        )
        medium = WirelessMedium(sim, mobility, config)
        radios = {node: Radio(sim, medium, node) for node in ("src", "walker")}
        received = []
        radios["walker"].on_receive = lambda frame: received.append(
            (sim.now, frame.kind)
        )
        for step in range(24):
            sim.schedule_call(
                step * 0.5, radios["src"].unicast, "walker", step, 600, f"seg{step}"
            )
        sim.run()
        return received, medium

    expected, _ = run(1)
    actual, medium = run(3)
    assert actual == expected
    assert expected  # the stream did deliver before the walker left range
    # The walker crossed at least one region border while frames were in
    # flight, so the handoff path (not just the steady state) was exercised.
    assert medium._index.shard_migrations >= 1
    assert medium.region_partition.shards == 3


# ========================================================== trial identity
def run_fingerprint(config, seed=42, protocol="dapes"):
    return run_protocol_trial(protocol, config, seed).to_dict()


SHARDED = dict(shards=3, shard_workers=2)

CHURN_AND_FAULTS = dict(
    churn="poisson",
    churn_mean_session=1.0,
    churn_mean_offline=1.0,
    churn_abrupt_fraction=0.5,
    faults="link_flap",
    num_files=2,
    file_size=40_000,
    max_duration=45.0,
)


def test_sharded_trial_byte_identical_to_unsharded():
    base = ExperimentConfig.tiny()
    assert run_fingerprint(base.with_overrides(**SHARDED)) == run_fingerprint(base)


def test_sharded_trial_byte_identical_with_churn_and_faults_armed():
    base = ExperimentConfig.tiny().with_overrides(**CHURN_AND_FAULTS)
    reference = run_fingerprint(base)
    assert reference["extras"]["churn.abrupt_kills"] > 0  # churn actually ran
    assert run_fingerprint(base.with_overrides(**SHARDED)) == reference


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
def test_sharded_trial_byte_identical_across_array_backends():
    base = ExperimentConfig.tiny().with_overrides(**SHARDED)
    reference = run_fingerprint(base.with_overrides(array_backend="scalar"))
    for overrides in (
        dict(array_backend="numpy"),
        dict(array_backend="numpy", neighbor_index="grid_array"),
    ):
        assert run_fingerprint(base.with_overrides(**overrides)) == reference


def test_shard_executor_modes_are_byte_identical_at_trial_level():
    base = ExperimentConfig.tiny().with_overrides(shards=3)
    reference = run_fingerprint(base.with_overrides(shard_workers=1))
    threaded = base.with_overrides(shard_workers=3, shard_executor="thread")
    assert run_fingerprint(threaded) == reference


def test_profile_records_shard_counters_only_when_sharded():
    base = ExperimentConfig.tiny().with_overrides(profile=True, max_duration=30.0)
    plain = run_protocol_trial("dapes", base, seed=1).profile
    assert "spatial.shards" not in plain
    sharded = run_protocol_trial(
        "dapes", base.with_overrides(**SHARDED), seed=1
    ).profile
    assert sharded["spatial.shards"] == 3
    assert sharded["spatial.epoch_rolls"] > 0
    assert sharded["spatial.shard_snapshot_builds"] > 0
    assert sharded["spatial.parallel_barriers"] > 0
    # Profiling the sharded medium must not perturb the outcome counters.
    assert sharded["engine.events"] == plain["engine.events"]


# ========================================================== config plumbing
def test_channel_config_validates_shard_fields():
    assert ChannelConfig(shards=4, shard_workers=2).shards == 4
    with pytest.raises(ValueError):
        ChannelConfig(shards=0)
    with pytest.raises(ValueError):
        ChannelConfig(shards=2, neighbor_index="brute")
    with pytest.raises(ValueError):
        ChannelConfig(shard_workers=0)
    with pytest.raises(ValueError):
        ChannelConfig(shard_executor="fibers")
    with pytest.raises(ValueError):
        ChannelConfig(shard_epoch=0.0)
    with pytest.raises(ValueError):
        ChannelConfig(scalar_query_limit=0)


def test_scalar_query_limit_promotion_keeps_measured_defaults():
    mobility = StaticPlacement({"a": (0.0, 0.0)})
    if numpy_available():
        auto = build_neighbor_index(ChannelConfig(neighbor_index="grid_array"), mobility)
        assert auto.scalar_query_limit == 1  # grid_array's measured default
        overridden = build_neighbor_index(
            ChannelConfig(neighbor_index="grid_array", scalar_query_limit=7), mobility
        )
        assert overridden.scalar_query_limit == 7
    sharded = build_neighbor_index(
        ChannelConfig(shards=2, scalar_query_limit=9, array_backend="numpy"), mobility
    )
    assert isinstance(sharded, ShardedNeighborIndex)
    for sub in sharded._subs:
        assert getattr(sub, "scalar_query_limit", 9) == 9


def test_experiment_config_threads_shard_fields_into_the_channel():
    config = ExperimentConfig.tiny().with_overrides(
        shards=4, shard_workers=2, shard_executor="serial", scalar_query_limit=17
    )
    channel = config.channel()
    assert (channel.shards, channel.shard_workers) == (4, 2)
    assert channel.shard_executor == "serial"
    assert channel.scalar_query_limit == 17
    # Balanced regions: the K shards tile the configured area.
    assert channel.shard_region_width == pytest.approx(config.area_size / 4)
    roundtrip = ExperimentConfig.from_dict(config.as_dict())
    assert roundtrip.shards == 4 and roundtrip.scalar_query_limit == 17


def test_cli_exposes_shard_and_query_limit_flags():
    from repro.experiments.__main__ import build_parser

    args = build_parser().parse_args(
        ["run", "scaling", "--shards", "4", "--shard-workers", "2",
         "--shard-executor", "process", "--scalar-query-limit", "64"]
    )
    assert (args.shards, args.shard_workers) == (4, 2)
    assert args.shard_executor == "process"
    assert args.scalar_query_limit == 64


# ========================================================== shard-dark fault
class _ScriptedFaults(FaultModel):
    name = "scripted-shard-test"

    def __init__(self, episodes):
        super().__init__({})
        self.episodes = tuple(episodes)

    def plan(self, node_ids, horizon, stream):
        return FaultPlan(episodes=self.episodes)


def test_partition_shard_mode_plans_the_shard_sentinel():
    model = Partition({"at": 10.0, "duration": 5.0, "mode": "shard", "shard": 2})
    plan = model.plan(["a", "b"], 100.0, lambda entity: random.Random(0))
    assert [episode.subject for episode in plan.episodes] == [(SHARD, 2)]
    pinned = Partition(
        {"at": 10.0, "duration": 5.0, "mode": "shard", "shard": 1,
         "shards": 3, "region_width": 40.0}
    )
    plan = pinned.plan(["a", "b"], 100.0, lambda entity: random.Random(0))
    assert plan.episodes[0].subject == (SHARD, 1, 3, 40.0)
    with pytest.raises(ValueError):
        Partition({"mode": "shard", "shard": -1})
    with pytest.raises(ValueError):
        Partition({"mode": "shard", "shards": 0})


def test_shard_dark_group_resolves_from_the_region_partition():
    sim = Simulator(seed=3)
    positions = {"a": (30.0, 0.0), "b": (80.0, 0.0), "c": (90.0, 0.0), "d": (150.0, 0.0)}
    medium = WirelessMedium(
        sim,
        StaticPlacement(positions),
        ChannelConfig(wifi_range=60.0, loss_rate=0.0, shards=3, shard_region_width=66.0),
    )
    radios = {node: Radio(sim, medium, node) for node in positions}
    received = []
    radios["b"].on_receive = lambda frame: received.append(frame.kind)
    manager = FaultManager(
        sim,
        medium,
        _ScriptedFaults([FaultEpisode(PARTITION, 1.0, 3.0, subject=(SHARD, 1))]),
        list(positions),
        horizon=10.0,
    )
    manager.activate()
    # Shard 1 owns stripe [66, 132): exactly b and c go dark together.
    sim.schedule_call(1.5, radios["a"].broadcast, "x", 400, "dark")
    sim.schedule_call(1.5, radios["c"].broadcast, "x", 400, "inside")
    sim.schedule_call(4.0, radios["a"].broadcast, "x", 400, "healed")
    sim.run()
    assert received == ["inside", "healed"]
    assert manager.partitions_started == 1


def test_shard_dark_rehearsal_is_byte_identical_sharded_and_unsharded():
    # Geometry pinned via fault params: with it, the unsharded reference run
    # (whose medium has no live RegionPartition) darkens exactly the group
    # the sharded run does, so the rehearsal itself A/Bs byte-identically.
    base = ExperimentConfig.tiny().with_overrides(
        faults="partition",
        fault_params={
            "mode": "shard", "shard": 1, "shards": 3, "region_width": 40.0,
            "at": 0.1, "duration": 0.3,
        },
    )
    reference = run_fingerprint(base)
    assert reference["extras"]["faults.partitions"] >= 1
    assert run_fingerprint(base.with_overrides(**SHARDED)) == reference
