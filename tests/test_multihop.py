"""Integration tests for multi-hop communication (Section V)."""

import pytest

from repro.core import (
    CollectionBuilder,
    DapesConfig,
    build_dapes_peer,
    build_pure_forwarder,
)
from repro.crypto import KeyPair, TrustAnchorStore
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


def build_chain(middle_role, forwarding_probability=0.6, loss_rate=0.0, seed=3, multi_hop=True):
    """producer -- middle -- downloader, endpoints out of range of each other."""
    sim = Simulator(seed=seed)
    mobility = StaticPlacement({"producer": (0, 0), "middle": (55, 0), "downloader": (110, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=loss_rate))
    key = KeyPair.generate("/residents/producer", seed=b"producer-key")
    trust = TrustAnchorStore()
    trust.add_anchor_key(key)
    config = DapesConfig(multi_hop=multi_hop, forwarding_probability=forwarding_probability)

    producer = build_dapes_peer(sim, medium, "producer", config=config, trust=trust, key=key)
    downloader = build_dapes_peer(sim, medium, "downloader", config=config, trust=trust)
    if middle_role == "pure":
        middle = build_pure_forwarder(sim, medium, "middle", forward_probability=forwarding_probability)
    else:
        middle = build_dapes_peer(sim, medium, "middle", config=config, trust=trust)

    collection = (
        CollectionBuilder("chain-coll", 1533783192, packet_size=1024, producer="/residents/producer")
        .add_file("file-0", size_bytes=6 * 1024)
        .build()
    )
    metadata = producer.peer.publish_collection(collection)
    downloader.peer.join(metadata.collection)
    producer.start()
    downloader.start()
    if middle_role != "pure":
        middle.start()
    return sim, medium, producer, middle, downloader, metadata


def test_endpoints_are_not_directly_connected():
    sim, medium, *_ = build_chain("pure")
    assert "downloader" not in medium.neighbours_of("producer")
    assert "middle" in medium.neighbours_of("producer")
    assert "middle" in medium.neighbours_of("downloader")


def test_download_through_pure_forwarder():
    sim, medium, producer, middle, downloader, metadata = build_chain("pure")
    sim.run(until=300.0)
    assert downloader.peer.progress(metadata.collection) == 1.0
    # The pure forwarder served requests from its Content Store / re-broadcasts.
    assert middle.forwarder.stats.interests_forwarded > 0 or middle.forwarder.stats.cs_hits_served > 0
    assert middle.cached_packets > 0


def test_download_through_intermediate_dapes_node():
    sim, medium, producer, middle, downloader, metadata = build_chain("dapes", seed=4)
    sim.run(until=300.0)
    assert downloader.peer.progress(metadata.collection) == 1.0
    # The relay runs DAPES but never joined the collection.
    assert metadata.collection not in middle.peer.join_targets
    assert middle.strategy.interests_rebroadcast > 0


def test_no_multi_hop_without_forwarding():
    """With multi-hop disabled and a DAPES relay that never rebroadcasts, the
    two-hop downloader cannot be served (the relay still answers nothing from
    its own store because it holds nothing)."""
    sim, medium, producer, middle, downloader, metadata = build_chain(
        "dapes", forwarding_probability=0.0, multi_hop=False, seed=5
    )
    sim.run(until=120.0)
    assert downloader.peer.progress(metadata.collection) < 1.0
    assert middle.strategy.interests_rebroadcast == 0


def test_intermediate_node_builds_knowledge_from_overheard_traffic():
    sim, medium, producer, middle, downloader, metadata = build_chain("dapes", seed=6)
    sim.run(until=300.0)
    # The relay built short-lived knowledge about the collection from the
    # traffic it overheard and used it to re-broadcast Interests.
    knowledge = middle.peer.knowledge
    assert knowledge.knows_collection(metadata.collection, sim.now)
    assert len(knowledge) > 0
    assert middle.strategy.interests_rebroadcast > 0
    # Two-hop progress over a purely probabilistic relay is substantial even
    # if a given seed does not finish within the bounded run time.
    assert downloader.peer.progress(metadata.collection) >= 0.6


def test_higher_forwarding_probability_increases_overhead():
    results = {}
    for probability in (0.2, 0.8):
        sim, medium, producer, middle, downloader, metadata = build_chain(
            "pure", forwarding_probability=probability, seed=7
        )
        sim.run(until=240.0)
        results[probability] = medium.stats.frames_transmitted
    assert results[0.8] >= results[0.2] * 0.9  # more forwarding should not reduce traffic
