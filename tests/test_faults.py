"""The fault subsystem: models, registry, lifecycle manager, invariants.

Covers the deterministic model contract (plans are pure functions of the
per-entity named streams), the ``register_fault`` registry, the manager's
link/partition/stall/degrade state machine against a live micro medium,
the ``fault_`` config-override prefix, the invariant monitor, and —
critically — the zero-fault path: ``faults="none"`` must build no manager,
schedule no events and leave every result byte-identical to a pre-fault
run (asserted end-to-end in test_fault_equivalence.py).
"""

from __future__ import annotations

import pytest

from repro.faults import (
    DEGRADE,
    LINK,
    PARTITION,
    SPATIAL,
    STALL,
    Degrade,
    FaultEpisode,
    FaultManager,
    FaultModel,
    FaultPlan,
    InvariantMonitor,
    InvariantViolationError,
    LinkFlap,
    Partition,
    Stall,
    available_fault_models,
    build_fault_manager,
    build_fault_model,
    build_invariant_monitor,
    fault_model_class,
    fault_node_ids,
    pair_key,
    validate_faults,
)
from repro.experiments import ExperimentConfig, get_experiment
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, Radio, WirelessMedium


def make_stream(seed=1):
    sim = Simulator(seed=seed)
    return lambda entity: sim.rng(f"faults.{entity}")


# ================================================================== registry
def test_builtin_models_registered():
    assert set(available_fault_models()) >= {
        "none", "link_flap", "partition", "stall", "degrade",
    }


def test_unknown_model_raises_with_available_list():
    with pytest.raises(ValueError, match="available"):
        fault_model_class("nope")


def test_unknown_parameter_rejected():
    with pytest.raises(ValueError, match="no parameter"):
        build_fault_model("link_flap", {"typo_down": 10})


def test_parameter_values_validated():
    for name, params in (
        ("link_flap", {"mean_down": -1.0}),
        ("link_flap", {"pair_fraction": 1.5}),
        ("partition", {"fraction": 1.0}),
        ("partition", {"mode": "diagonal"}),
        ("stall", {"node_fraction": -0.1}),
        ("degrade", {"duty": 0.0}),
        ("degrade", {"severity": 2.0}),
    ):
        with pytest.raises(ValueError):
            validate_faults(name, params)


def test_none_model_plans_nothing_and_draws_nothing():
    calls = []

    def stream(entity):
        calls.append(entity)

    plan = build_fault_model("none").plan(["a", "b"], 100.0, stream)
    assert plan.empty
    assert calls == []


# ================================================================== episodes
def test_episode_validation():
    with pytest.raises(ValueError, match="kind"):
        FaultEpisode("meteor", 0.0, 1.0)
    with pytest.raises(ValueError, match="end"):
        FaultEpisode(LINK, 5.0, 5.0, subject=("a", "b"))
    with pytest.raises(ValueError, match="severity"):
        FaultEpisode(LINK, 0.0, 1.0, subject=("a", "b"), severity=0.0)
    with pytest.raises(ValueError, match="pair"):
        FaultEpisode(LINK, 0.0, 1.0, subject="a")
    with pytest.raises(ValueError, match="node id"):
        FaultEpisode(STALL, 0.0, 1.0, subject=())
    episode = FaultEpisode(PARTITION, 2.0, 5.0, subject=("a", "b"))
    assert episode.duration == 3.0


# ==================================================================== models
def test_link_flap_plan_is_deterministic_and_bounded():
    model = LinkFlap({"mean_up": 5.0, "mean_down": 2.0, "pair_fraction": 1.0})
    plan_a = model.plan(["a", "b", "c"], 60.0, make_stream(3))
    plan_b = model.plan(["a", "b", "c"], 60.0, make_stream(3))
    assert plan_a == plan_b
    assert not plan_a.empty
    for episode in plan_a.episodes:
        assert episode.kind == LINK
        assert episode.subject == pair_key(*episode.subject)
        assert 0.0 <= episode.start < episode.end <= 60.0
    starts = [episode.start for episode in plan_a.episodes]
    assert starts == sorted(starts)


def test_link_flap_adding_a_node_never_shifts_existing_pairs():
    """Per-pair streams: pair (a, b)'s episodes are a function of that pair
    alone, so growing the population cannot reshuffle anyone's outages."""
    model = LinkFlap({"mean_up": 5.0, "mean_down": 2.0, "pair_fraction": 1.0})
    small = model.plan(["a", "b"], 60.0, make_stream(3))
    large = model.plan(["a", "b", "z"], 60.0, make_stream(3))
    ab_small = [e for e in small.episodes if e.subject == ("a", "b")]
    ab_large = [e for e in large.episodes if e.subject == ("a", "b")]
    assert ab_small == ab_large


def test_link_flap_pair_fraction_zero_plans_nothing():
    model = LinkFlap({"pair_fraction": 0.0})
    assert model.plan(["a", "b", "c"], 100.0, make_stream()).empty


def test_partition_membership_plan():
    model = Partition({"at": 10.0, "duration": 5.0, "fraction": 0.5})
    plan = model.plan(["a", "b", "c", "d"], 100.0, make_stream(2))
    assert len(plan.episodes) == 1
    episode = plan.episodes[0]
    assert episode.kind == PARTITION
    assert (episode.start, episode.end) == (10.0, 15.0)
    assert isinstance(episode.subject, tuple)
    assert len(episode.subject) == 2  # half of four nodes
    assert set(episode.subject) < {"a", "b", "c", "d"}
    # Same streams, same split.
    assert model.plan(["a", "b", "c", "d"], 100.0, make_stream(2)) == plan


def test_partition_repeats_and_spatial_mode():
    model = Partition({"at": 10.0, "duration": 5.0, "repeat_every": 30.0,
                       "mode": "spatial", "fraction": 0.25})
    plan = model.plan(["a", "b", "c", "d"], 100.0, make_stream())
    assert [e.start for e in plan.episodes] == [10.0, 40.0, 70.0]
    for episode in plan.episodes:
        assert episode.subject == (SPATIAL, 0.25)


def test_stall_plan_targets_a_node_subset():
    model = Stall({"mean_active": 5.0, "mean_stalled": 2.0, "node_fraction": 1.0})
    plan = model.plan(["a", "b"], 60.0, make_stream(5))
    assert not plan.empty
    assert {e.subject for e in plan.episodes} <= {"a", "b"}
    for episode in plan.episodes:
        assert episode.kind == STALL
        assert episode.end <= 60.0


def test_degrade_square_wave_is_exact_and_rng_free():
    calls = []

    def stream(entity):
        calls.append(entity)

    model = Degrade({"period": 20.0, "duty": 0.25, "severity": 0.5})
    plan = model.plan(["a"], 60.0, stream)
    assert calls == []  # pure arithmetic, no streams
    assert [(e.start, e.end) for e in plan.episodes] == [
        (15.0, 20.0), (35.0, 40.0), (55.0, 60.0),
    ]
    for episode in plan.episodes:
        assert episode.kind == DEGRADE
        assert episode.severity == 0.5


# ================================================================== manager
class Scripted(FaultModel):
    """A fault model replaying a fixed episode list (mirrors TraceChurn)."""

    name = "scripted-test"

    def __init__(self, episodes):
        super().__init__({})
        self.episodes = tuple(episodes)

    def plan(self, node_ids, horizon, stream):
        return FaultPlan(episodes=self.episodes)


def micro_world(seed=3, loss_rate=0.0):
    sim = Simulator(seed=seed)
    positions = {"a": (0.0, 0.0), "b": (30.0, 0.0), "c": (55.0, 0.0)}
    medium = WirelessMedium(
        sim,
        StaticPlacement(positions),
        ChannelConfig(wifi_range=40.0, loss_rate=loss_rate),
    )
    radios = {node: Radio(sim, medium, node) for node in positions}
    return sim, medium, radios


def manager_with(sim, medium, episodes, horizon=100.0):
    manager = FaultManager(sim, medium, Scripted(episodes), ["a", "b", "c"], horizon)
    manager.activate()
    return manager


def deliveries_into(radios):
    received = []
    for node, radio in radios.items():
        radio.on_receive = (
            lambda frame, node=node: received.append((node, frame.sender, frame.kind))
        )
    return received


def test_link_block_suppresses_and_heals():
    sim, medium, radios = micro_world()
    received = deliveries_into(radios)
    manager = manager_with(
        sim, medium, [FaultEpisode(LINK, 1.0, 2.0, subject=("a", "b"))]
    )
    sim.schedule_call(1.5, radios["a"].broadcast, "mid-fault", 500, "t1")
    sim.schedule_call(3.0, radios["a"].broadcast, "healed", 500, "t2")
    sim.run()
    kinds_at_b = [kind for node, _, kind in received if node == "b"]
    assert kinds_at_b == ["t2"]  # t1 was blocked by the down link
    assert manager.link_blocks == 1
    assert manager.metrics()["faults.active_time"] == pytest.approx(1.0)


def test_blocked_links_hide_neighbours():
    sim, medium, radios = micro_world()
    manager_with(sim, medium, [FaultEpisode(LINK, 1.0, 2.0, subject=("a", "b"))])
    sim.run(until=1.5)
    assert medium.neighbours_of("a") == []  # b was a's only reachable peer
    sim.run(until=3.0)
    assert medium.neighbours_of("a") == ["b"]


def test_partition_blocks_cross_boundary_only():
    sim, medium, radios = micro_world()
    received = deliveries_into(radios)
    manager = manager_with(
        sim, medium, [FaultEpisode(PARTITION, 1.0, 3.0, subject=("a",))]
    )
    # a -> b crosses the boundary (blocked); b -> c stays inside (clean).
    sim.schedule_call(1.5, radios["a"].broadcast, "cross", 500, "cross")
    sim.schedule_call(2.0, radios["b"].broadcast, "inside", 500, "inside")
    sim.run()
    assert ("b", "a", "cross") not in received
    assert ("c", "b", "inside") in received
    assert manager.partitions_started == 1
    assert manager.partition_heals == 1


def test_partition_heal_records_time_to_recover():
    sim, medium, radios = micro_world()
    deliveries_into(radios)
    manager = manager_with(
        sim, medium, [FaultEpisode(PARTITION, 1.0, 2.0, subject=("a",))]
    )
    # First cross-boundary delivery after the heal closes the recovery watch.
    sim.schedule_call(2.5, radios["a"].broadcast, "knit", 500, "t")
    sim.run()
    assert len(manager.recovery_samples) == 1
    assert manager.recovery_samples[0] == pytest.approx(0.5, abs=0.01)
    metrics = manager.metrics()
    assert metrics["recovery.recovered_partitions"] == 1.0
    assert metrics["recovery.time_to_recover_max"] >= metrics["recovery.time_to_recover_mean"] > 0


def test_spatial_partition_resolves_from_positions():
    sim, medium, radios = micro_world()
    manager = manager_with(
        sim, medium,
        [FaultEpisode(PARTITION, 1.0, 2.0, subject=(SPATIAL, 1.0 / 3.0))],
    )
    sim.run(until=1.5)
    # The westmost third of {a(0), b(30), c(55)} is {a}.
    assert manager.link_extra_loss("a", "b") is None
    assert manager.link_extra_loss("b", "c") == 0.0
    sim.run()


def test_stall_queues_outbound_and_suppresses_inbound():
    sim, medium, radios = micro_world()
    received = deliveries_into(radios)
    manager = manager_with(
        sim, medium, [FaultEpisode(STALL, 1.0, 2.0, subject="b")]
    )
    sim.schedule_call(1.2, radios["b"].broadcast, "outbound", 500, "from-b")
    sim.schedule_call(1.5, radios["a"].broadcast, "inbound", 500, "to-b")
    sim.run()
    # b's frame was queued at 1.2 and replayed at resume; a's frame reached c
    # (in range of nobody else) but was suppressed at b.
    assert manager.stalled_sends == 1
    assert manager.replayed_frames == 1
    assert manager.suppressed_deliveries >= 1
    assert ("b", "a", "to-b") not in received
    assert ("a", "b", "from-b") in received  # the replay, after t=2.0
    assert manager.stall_resumes == 1


def test_heal_callbacks_fire_for_affected_nodes_only():
    sim, medium, radios = micro_world()
    manager = manager_with(
        sim, medium,
        [FaultEpisode(PARTITION, 1.0, 2.0, subject=("a",)),
         FaultEpisode(STALL, 1.0, 3.0, subject="c")],
    )
    healed = []
    for node in ("a", "b", "c"):
        manager.register_heal(node, lambda node=node: healed.append((sim.now, node)))
    sim.run()
    assert healed == [(2.0, "a"), (3.0, "c")]


def test_degrade_folds_extra_loss():
    sim, medium, radios = micro_world()
    manager = manager_with(
        sim, medium,
        [FaultEpisode(DEGRADE, 1.0, 2.0, severity=0.5),
         FaultEpisode(DEGRADE, 1.5, 2.5, severity=0.5)],
    )
    sim.run(until=1.2)
    assert manager.link_extra_loss("a", "b") == pytest.approx(0.5)
    sim.run(until=1.8)
    assert manager.link_extra_loss("a", "b") == pytest.approx(0.75)  # folded
    sim.run(until=2.2)
    assert manager.link_extra_loss("a", "b") == pytest.approx(0.5)
    sim.run()
    assert manager.link_extra_loss("a", "b") == 0.0
    assert manager.degrade_windows == 2


def test_overlapping_link_episodes_refcount():
    sim, medium, radios = micro_world()
    manager = manager_with(
        sim, medium,
        [FaultEpisode(LINK, 1.0, 3.0, subject=("a", "b")),
         FaultEpisode(LINK, 2.0, 4.0, subject=("a", "b"))],
    )
    sim.run(until=3.5)
    assert manager.link_extra_loss("a", "b") is None  # second still holds it
    sim.run()
    assert manager.link_extra_loss("a", "b") == 0.0


# ==================================================================== wiring
def test_fault_node_ids_include_producer():
    names = {
        "downloaders": ["producer", "m1"],
        "stationary": ["repo-0"],
        "pure": ["p0"],
        "intermediate": ["i0"],
    }
    assert fault_node_ids(names) == ["producer", "m1", "repo-0", "p0", "i0"]


def test_build_fault_manager_none_returns_none():
    config = ExperimentConfig.tiny()
    assert build_fault_manager(config, None, None, {}) is None


def test_fault_override_prefix_merges_params():
    config = ExperimentConfig.tiny().with_overrides(
        faults="link_flap", fault_mean_down=3.5, fault_pair_fraction=0.2
    )
    assert config.faults == "link_flap"
    assert config.fault_params == {"mean_down": 3.5, "pair_fraction": 0.2}
    again = config.with_overrides(fault_mean_down=7.0)
    assert again.fault_params == {"mean_down": 7.0, "pair_fraction": 0.2}
    # The literal field name still replaces wholesale.
    replaced = config.with_overrides(fault_params={"mean_up": 1.0})
    assert replaced.fault_params == {"mean_up": 1.0}


def test_config_roundtrips_fault_fields():
    config = ExperimentConfig.tiny().with_overrides(
        faults="partition", fault_at=5.0, invariants=True
    )
    rebuilt = ExperimentConfig.from_dict(config.as_dict())
    assert rebuilt == config


def test_fault_specs_registered():
    faults_spec = get_experiment("faults")
    assert faults_spec.overrides["faults"] == "link_flap"
    assert faults_spec.overrides["invariants"] is True
    partition_spec = get_experiment("partition")
    assert partition_spec.overrides["faults"] == "partition"


# ================================================================ invariants
def test_invariant_monitor_disabled_by_default():
    sim, medium, radios = micro_world()
    config = ExperimentConfig.tiny()
    assert build_invariant_monitor(config, sim, medium) is None


def test_invariant_monitor_flags_delivery_to_detached_node():
    sim, medium, radios = micro_world()
    monitor = InvariantMonitor(sim, medium)
    monitor.install()
    airtime = radios["a"].broadcast("payload", 2000, kind="t")
    # Detach the receiver while the frame is on the air: the medium's own
    # guard drops the delivery, so no violation is recorded...
    sim.schedule_call(airtime / 2, medium.detach, "b")
    sim.run()
    assert monitor.violations == []
    # ...but a delivery that somehow reached a detached node would be.
    monitor._on_deliver("b", None)
    assert any("detached" in violation for violation in monitor.violations)


def test_invariant_monitor_flags_delivery_to_stalled_node():
    sim, medium, radios = micro_world()
    manager = manager_with(sim, medium, [FaultEpisode(STALL, 0.0, 50.0, subject="b")])
    monitor = InvariantMonitor(sim, medium, faults=manager)
    sim.run(until=1.0)
    monitor._on_deliver("b", None)
    assert any("stalled" in violation for violation in monitor.violations)
    sim.run()


def test_invariant_violation_error_summarizes():
    error = InvariantViolationError([f"violation {i}" for i in range(8)])
    assert error.violations == [f"violation {i}" for i in range(8)]
    assert "8 invariant violation(s)" in str(error)
    assert "+3 more" in str(error)
