"""The process-pool trial runner must mirror the serial path exactly."""

from repro.experiments import ExperimentConfig, available_protocols, run_trials
from repro.experiments.runner import trial_seeds


def test_trial_seeds_are_deterministic():
    config = ExperimentConfig.tiny().with_overrides(trials=4, base_seed=100)
    assert trial_seeds(config) == [100, 1109, 2118, 3127]


def test_parallel_run_trials_matches_serial_aggregate():
    config = ExperimentConfig.tiny().with_overrides(trials=3, max_duration=180.0)
    parameters = {"wifi_range": config.wifi_range}
    serial = run_trials("dapes", config, "DAPES", parameters=parameters, workers=1)
    parallel = run_trials("dapes", config, "DAPES", parameters=parameters, workers=3)
    assert serial == parallel


def test_workers_config_field_drives_parallelism():
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=180.0, workers=2)
    assert config.workers == 2
    point = run_trials("dapes", config, "DAPES")
    reference = run_trials("dapes", config.with_overrides(workers=1), "DAPES")
    assert point == reference


def test_registered_protocols_include_all_paper_protocols():
    assert set(available_protocols()) >= {"dapes", "bithoc", "ekta"}
