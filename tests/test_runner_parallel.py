"""The process-pool runners must mirror the serial path exactly."""

import pytest

from repro.experiments import ExperimentConfig, available_protocols, run_experiment, run_trials
from repro.experiments.runner import trial_seeds


def test_trial_seeds_are_deterministic():
    config = ExperimentConfig.tiny().with_overrides(trials=4, base_seed=100)
    assert trial_seeds(config) == [100, 1109, 2118, 3127]


def test_parallel_run_trials_matches_serial_aggregate():
    config = ExperimentConfig.tiny().with_overrides(trials=3, max_duration=180.0)
    parameters = {"wifi_range": config.wifi_range}
    serial = run_trials("dapes", config, "DAPES", parameters=parameters, workers=1)
    parallel = run_trials("dapes", config, "DAPES", parameters=parameters, workers=3)
    assert serial == parallel


def test_workers_config_field_drives_parallelism():
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=180.0, workers=2)
    assert config.workers == 2
    point = run_trials("dapes", config, "DAPES")
    reference = run_trials("dapes", config.with_overrides(workers=1), "DAPES")
    assert point == reference


def test_registered_protocols_include_all_paper_protocols():
    assert set(available_protocols()) >= {"dapes", "bithoc", "ekta"}


# ------------------------------------------------------------ sweep level
def test_parallel_sweep_matches_serial_sweep():
    """The whole-grid scheduler: serial and parallel aggregates are identical."""
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=180.0)
    axes = {"wifi_range": (60.0, 80.0)}
    serial = run_experiment("fig9a", config, axes=axes, workers=1)
    parallel = run_experiment("fig9a", config, axes=axes, workers=4)
    assert serial == parallel
    assert serial.rows() == parallel.rows()
    # The raw per-trial results must match too (same seeds, same order).
    for point_s, point_p in zip(serial.points, parallel.points):
        assert point_s.trial_results == point_p.trial_results


def test_parallel_suite_matches_serial_suite():
    """A whole suite shares one pool and still reproduces the serial outputs."""
    from repro.experiments import SweepRequest, get_experiment, run_suite

    config = ExperimentConfig.tiny().with_overrides(max_duration=180.0)
    requests = [
        SweepRequest(spec=get_experiment("fig9a"), config=config, axes={"wifi_range": (80.0,)}),
        SweepRequest(spec=get_experiment("fig10"), config=config, axes={"wifi_range": (80.0,)}),
    ]
    serial = run_suite(requests, workers=1)
    parallel = run_suite(requests, workers=4)
    assert serial == parallel


# --------------------------------------------------------- fallback paths
def _broken_pool(*args, **kwargs):
    raise OSError("process pools are disabled in this sandbox")


def test_run_trials_fallback_to_serial_warns(monkeypatch):
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=180.0)
    reference = run_trials("dapes", config, "DAPES", workers=1)
    monkeypatch.setattr("repro.experiments.runner.ProcessPoolExecutor", _broken_pool)
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        fallback = run_trials("dapes", config, "DAPES", workers=2)
    assert fallback == reference


def test_sweep_fallback_to_serial_warns(monkeypatch):
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=180.0)
    axes = {"wifi_range": (80.0,)}
    reference = run_experiment("fig9a", config, axes=axes, workers=1)
    monkeypatch.setattr("repro.experiments.sweep.ProcessPoolExecutor", _broken_pool)
    with pytest.warns(RuntimeWarning, match="falling back to serial"):
        fallback = run_experiment("fig9a", config, axes=axes, workers=4)
    assert fallback == reference
