"""Unit tests for collection metadata (Section IV-C) and the packet store."""

import pytest

from repro.crypto import KeyPair, verify
from repro.core import CollectionBuilder, FileSpec, MetadataFormat, PacketStore
from repro.core.collection import synthetic_packet_content
from repro.core.metadata import CollectionMetadata, build_metadata
from repro.ndn import Name


@pytest.fixture
def collection():
    return (
        CollectionBuilder("damaged-bridge", 1533783192, packet_size=1024, producer="/producer")
        .add_file("bridge-picture", size_bytes=5 * 1024)
        .add_file("bridge-location", size_bytes=2 * 1024)
        .build()
    )


@pytest.fixture
def producer_key():
    return KeyPair.generate("/producer", seed=b"p")


# ----------------------------------------------------------------- collections
def test_collection_packet_counts(collection):
    assert collection.total_packets == 7  # 5 + 2 packets
    assert collection.total_bytes == 7 * 1024


def test_file_spec_validation():
    with pytest.raises(ValueError):
        FileSpec(name="has/slash", size_bytes=10)
    with pytest.raises(ValueError):
        FileSpec(name="empty", size_bytes=0)


def test_collection_rejects_duplicate_file_names():
    builder = CollectionBuilder("c", 1, packet_size=128)
    builder.add_file("same", size_bytes=100)
    builder.add_file("same", size_bytes=100)
    with pytest.raises(ValueError):
        builder.build()


def test_file_with_real_content_packetises_exactly():
    content = bytes(range(256)) * 5  # 1280 bytes
    builder = CollectionBuilder("c", 1, packet_size=512).add_file("real", content=content)
    collection = builder.build()
    metadata = collection.build_metadata("digest")
    payloads = [collection.packet_payload(metadata, i) for i in range(metadata.total_packets)]
    assert b"".join(payloads) == content


# -------------------------------------------------------------------- metadata
def test_digest_metadata_lists_per_packet_digests(collection):
    metadata = collection.build_metadata(MetadataFormat.DIGEST)
    assert metadata.format is MetadataFormat.DIGEST
    assert all(len(file.packet_digests) == file.packet_count for file in metadata.files)
    assert all(file.merkle_root is None for file in metadata.files)


def test_merkle_metadata_carries_one_root_per_file(collection):
    metadata = collection.build_metadata(MetadataFormat.MERKLE)
    assert all(file.merkle_root and not file.packet_digests for file in metadata.files)


def test_merkle_metadata_is_much_smaller_than_digest_metadata():
    builder = CollectionBuilder("big", 1, packet_size=1024, producer="/p")
    builder.add_file("file", size_bytes=200 * 1024)  # 200 packets
    collection = builder.build()
    digest_size = collection.build_metadata("digest").wire_size
    merkle_size = collection.build_metadata("merkle").wire_size
    assert merkle_size < digest_size / 10


def test_bitmap_ordering_follows_file_then_sequence(collection):
    metadata = collection.build_metadata("merkle")
    assert metadata.global_index("bridge-picture", 0) == 0
    assert metadata.global_index("bridge-picture", 4) == 4
    assert metadata.global_index("bridge-location", 0) == 5
    assert metadata.locate(6) == ("bridge-location", 1)


def test_global_index_bounds_checked(collection):
    metadata = collection.build_metadata("merkle")
    with pytest.raises(KeyError):
        metadata.global_index("missing-file", 0)
    with pytest.raises(IndexError):
        metadata.global_index("bridge-picture", 99)
    with pytest.raises(IndexError):
        metadata.locate(metadata.total_packets)


def test_packet_name_and_index_roundtrip(collection):
    metadata = collection.build_metadata("merkle")
    for index in range(metadata.total_packets):
        name = metadata.packet_name(index)
        assert metadata.packet_index_of(name) == index


def test_packet_index_of_foreign_name_is_none(collection):
    metadata = collection.build_metadata("merkle")
    assert metadata.packet_index_of(Name("/other-collection/file/0")) is None
    assert metadata.packet_index_of(Name("/damaged-bridge-1533783192/unknown-file/0")) is None


def test_digest_verification_per_packet(collection):
    metadata = collection.build_metadata("digest")
    payload = collection.packet_payload(metadata, 0)
    assert metadata.verify_packet(0, payload) is True
    assert metadata.verify_packet(0, b"tampered") is False


def test_merkle_verification_is_deferred_to_file_level(collection):
    metadata = collection.build_metadata("merkle")
    payload = collection.packet_payload(metadata, 0)
    assert metadata.verify_packet(0, payload) is None
    contents = [collection.packet_payload(metadata, metadata.global_index("bridge-picture", i)) for i in range(5)]
    assert metadata.verify_file("bridge-picture", contents)
    assert not metadata.verify_file("bridge-picture", contents[:-1])
    assert not metadata.verify_file("bridge-picture", contents[:-1] + [b"bad"])


def test_metadata_encode_decode_roundtrip(collection):
    for fmt in ("digest", "merkle"):
        metadata = collection.build_metadata(fmt)
        decoded = CollectionMetadata.decode(metadata.encode())
        assert decoded.collection == metadata.collection
        assert decoded.format == metadata.format
        assert decoded.total_packets == metadata.total_packets
        assert decoded.digest == metadata.digest


def test_metadata_name_contains_digest(collection):
    metadata = collection.build_metadata("merkle")
    name = metadata.name()
    assert name[0] == metadata.collection
    assert name[1] == "metadata-file"
    assert name[2] == metadata.digest
    assert metadata.name(segment=2)[-1] == "2"


def test_build_metadata_rejects_empty_files():
    with pytest.raises(ValueError):
        build_metadata("c", [("empty", [])], "digest", "/p", 1024)
    with pytest.raises(ValueError):
        CollectionMetadata(collection="c", files=[], format=MetadataFormat.DIGEST, producer="/p", packet_size=1024)


# ---------------------------------------------------------------- packet store
def test_packet_store_accepts_verified_packets(collection, producer_key):
    metadata = collection.build_metadata("digest")
    store = PacketStore(metadata)
    data = collection.build_packet(metadata, 0, producer_key)
    assert store.add_packet(data, now=1.0)
    assert store.has(0)
    assert store.bitmap.count() == 1
    assert store.progress() == pytest.approx(1 / 7)


def test_packet_store_rejects_corrupted_digest_packet(collection, producer_key):
    metadata = collection.build_metadata("digest")
    store = PacketStore(metadata)
    data = collection.build_packet(metadata, 0, producer_key)
    data.content = b"corrupted"
    assert not store.add_packet(data)
    assert not store.has(0)


def test_packet_store_ignores_foreign_packets(collection, producer_key):
    metadata = collection.build_metadata("digest")
    store = PacketStore(metadata)
    from repro.ndn import Data

    assert not store.add_packet(Data(name=Name("/other/file/0"), content=b"x"))


def test_packet_store_completion_and_time(collection, producer_key):
    metadata = collection.build_metadata("digest")
    store = PacketStore(metadata)
    for index in range(metadata.total_packets):
        store.add_packet(collection.build_packet(metadata, index, producer_key), now=float(index))
    assert store.is_complete()
    assert store.completion_time == float(metadata.total_packets - 1)


def test_packet_store_merkle_drops_corrupt_file_on_completion(collection, producer_key):
    metadata = collection.build_metadata("merkle")
    store = PacketStore(metadata)
    base = metadata.global_index("bridge-location", 0)
    good = collection.build_packet(metadata, base, producer_key)
    bad = collection.build_packet(metadata, base + 1, producer_key)
    bad.content = b"tampered"  # merkle check can only catch this once the file is complete
    store.add_packet(good, now=0.0)
    store.add_packet(bad, now=0.0)
    # The whole file failed verification, so the unverified packets were dropped.
    assert not store.has(base + 1)
    assert not store.has(base)


def test_packet_store_mark_all_present(collection, producer_key):
    metadata = collection.build_metadata("digest")
    store = PacketStore(metadata)
    store.mark_all_present(collection, producer_key)
    assert store.is_complete()
    packet = store.packet(3)
    assert packet is not None and verify(str(packet.name), packet.content, packet.signature)


def test_packet_store_state_size_excludes_payload_bytes(collection, producer_key):
    metadata = collection.build_metadata("digest")
    store = PacketStore(metadata)
    store.mark_all_present(collection, producer_key)
    # Protocol state must stay far below the collection size (payloads go to disk).
    assert store.state_size_bytes < collection.total_bytes / 2


def test_synthetic_packet_content_is_deterministic():
    name = Name("/c/f/0")
    assert synthetic_packet_content(name) == synthetic_packet_content(Name("/c/f/0"))
    assert synthetic_packet_content(name) != synthetic_packet_content(Name("/c/f/1"))
