"""The churn subsystem: models, registry, lifecycle manager, scenario wiring.

Covers the deterministic model contract (plans are pure functions of the
per-node named streams), the ``register_churn`` registry, the manager's
ONLINE/DRAINING/OFFLINE state machine (graceful drain vs abrupt kill), the
``churn_`` config-override prefix, and — critically — the zero-churn path:
``churn="none"`` must build no manager, schedule no events and leave every
result byte-identical to a pre-churn run.
"""

from __future__ import annotations

import pytest

from repro.churn import (
    ARRIVE,
    DEPART,
    KILL,
    ChurnEvent,
    ChurnManager,
    ChurnPlan,
    FlashCrowd,
    PoissonChurn,
    TraceChurn,
    available_churn_models,
    build_churn_manager,
    build_churn_model,
    churn_model_class,
    churnable_node_ids,
    validate_churn,
)
from repro.experiments import ExperimentConfig, get_builder, get_experiment
from repro.experiments.metrics import RunResult, aggregate_trials
from repro.experiments.runner import run_protocol_trial
from repro.mobility import StaticPlacement
from repro.profiling import collect_run_profile
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, Radio, WirelessMedium


def make_stream(seed=1):
    sim = Simulator(seed=seed)
    return lambda node_id: sim.rng(f"churn.{node_id}")


# ================================================================== registry
def test_builtin_models_registered():
    assert set(available_churn_models()) >= {"none", "poisson", "flashcrowd", "trace"}


def test_unknown_model_raises_with_available_list():
    with pytest.raises(ValueError, match="available"):
        churn_model_class("nope")


def test_unknown_parameter_rejected():
    with pytest.raises(ValueError, match="no parameter"):
        build_churn_model("poisson", {"typo_session": 10})


@pytest.mark.parametrize(
    "params",
    [
        {"mean_session": -1},
        {"mean_session": "fast"},
        {"abrupt_fraction": 1.5},
        {"session_distribution": "weibull"},
        {"pareto_alpha": 1.0},
    ],
)
def test_inconsistent_poisson_params_rejected(params):
    with pytest.raises(ValueError):
        validate_churn("poisson", params)


def test_flashcrowd_bursts_must_be_positive_int():
    with pytest.raises(ValueError):
        validate_churn("flashcrowd", {"bursts": 0})
    with pytest.raises(ValueError):
        validate_churn("flashcrowd", {"bursts": True})


def test_churn_event_validation():
    with pytest.raises(ValueError, match="unknown churn action"):
        ChurnEvent(time=1.0, node_id="a", action="vanish")
    with pytest.raises(ValueError, match="non-negative"):
        ChurnEvent(time=-1.0, node_id="a", action=ARRIVE)


def test_none_model_plans_nothing():
    plan = build_churn_model("none").plan(["a", "b"], 100.0, make_stream())
    assert plan.empty


# ==================================================================== models
def test_poisson_plan_is_deterministic_and_sorted():
    model = PoissonChurn({"mean_session": 20.0, "mean_offline": 10.0})
    first = model.plan(["a", "b", "c"], 200.0, make_stream(7))
    second = model.plan(["a", "b", "c"], 200.0, make_stream(7))
    assert first == second
    times = [event.time for event in first.events]
    assert times == sorted(times)
    assert not first.initially_offline


def test_poisson_per_node_streams_are_independent():
    """Dropping a node from the set must not perturb the others' schedules."""
    model = PoissonChurn({"mean_session": 20.0, "mean_offline": 10.0})
    both = model.plan(["a", "b"], 200.0, make_stream(7))
    only_a = model.plan(["a"], 200.0, make_stream(7))
    a_events = tuple(e for e in both.events if e.node_id == "a")
    assert a_events == only_a.events


def test_poisson_alternates_departures_and_arrivals_per_node():
    model = PoissonChurn({"mean_session": 15.0, "mean_offline": 15.0, "abrupt_fraction": 0.0})
    plan = model.plan(["a"], 500.0, make_stream(3))
    actions = [event.action for event in plan.events]
    assert actions  # long horizon, short sessions: events must exist
    # First event ends the initial session; then strict alternation.
    assert actions[0] == DEPART
    for previous, current in zip(actions, actions[1:]):
        assert {previous, current} == {DEPART, ARRIVE}


def test_poisson_abrupt_fraction_extremes():
    kills = PoissonChurn({"mean_session": 10.0, "abrupt_fraction": 1.0}).plan(
        ["a", "b"], 300.0, make_stream(5)
    )
    assert all(e.action == KILL for e in kills.events if e.action != ARRIVE)
    graceful = PoissonChurn({"mean_session": 10.0, "abrupt_fraction": 0.0}).plan(
        ["a", "b"], 300.0, make_stream(5)
    )
    assert all(e.action != KILL for e in graceful.events)


@pytest.mark.parametrize("distribution", ["exponential", "lognormal", "pareto"])
def test_poisson_session_distributions(distribution):
    model = PoissonChurn({"mean_session": 30.0, "session_distribution": distribution})
    plan = model.plan(["a", "b", "c", "d"], 400.0, make_stream(11))
    assert plan.events
    assert all(event.time < 400.0 for event in plan.events)


def test_flashcrowd_everyone_starts_offline_and_arrives_in_waves():
    model = FlashCrowd({"first_burst": 10.0, "bursts": 2, "spacing": 50.0, "jitter": 0.0})
    nodes = ["a", "b", "c", "d"]
    plan = model.plan(nodes, 200.0, make_stream(2))
    assert plan.initially_offline == tuple(nodes)
    arrivals = {e.node_id: e.time for e in plan.events if e.action == ARRIVE}
    assert set(arrivals) == set(nodes)
    # Round-robin waves with zero jitter land exactly on the wave times.
    assert arrivals["a"] == 10.0 and arrivals["c"] == 10.0
    assert arrivals["b"] == 60.0 and arrivals["d"] == 60.0


def test_flashcrowd_sessions_end_when_mean_session_set():
    model = FlashCrowd(
        {"first_burst": 1.0, "bursts": 1, "jitter": 0.0, "mean_session": 5.0,
         "abrupt_fraction": 0.0}
    )
    plan = model.plan(["a", "b"], 1000.0, make_stream(4))
    assert sum(1 for e in plan.events if e.action == DEPART) == 2


def test_trace_replays_schedule_literally():
    model = TraceChurn(
        {
            "events": [[5.0, "b", KILL], [2.0, "a", DEPART], [500.0, "a", ARRIVE]],
            "initially_offline": ["c"],
        }
    )
    plan = model.plan(["a", "b", "c"], 100.0, make_stream())
    # Beyond-horizon events are dropped; the rest sorted by time.
    assert plan.initially_offline == ("c",)
    assert [(e.time, e.node_id, e.action) for e in plan.events] == [
        (2.0, "a", DEPART),
        (5.0, "b", KILL),
    ]


def test_trace_rejects_unknown_nodes_at_plan_time():
    ghost_event = TraceChurn({"events": [[9.0, "ghost", KILL]]})
    with pytest.raises(ValueError, match="unknown node.*ghost|ghost.*unknown"):
        ghost_event.plan(["a", "b"], 100.0, make_stream())
    ghost_offline = TraceChurn({"initially_offline": ["ghost"]})
    with pytest.raises(ValueError, match="ghost"):
        ghost_offline.plan(["a", "b"], 100.0, make_stream())


def test_trace_validation_rejects_malformed_events():
    for bad in (
        {"events": [[1.0, "a"]]},
        {"events": [[-1.0, "a", KILL]]},
        {"events": [[1.0, "a", "explode"]]},
        {"initially_offline": [7]},
    ):
        with pytest.raises(ValueError):
            validate_churn("trace", bad)


# =================================================================== manager
def micro_world(node_ids, seed=1):
    sim = Simulator(seed=seed)
    positions = {node_id: (10.0 * index, 0.0) for index, node_id in enumerate(node_ids)}
    medium = WirelessMedium(sim, StaticPlacement(positions), ChannelConfig(wifi_range=60.0))
    radios = {node_id: Radio(sim, medium, node_id) for node_id in node_ids}
    return sim, medium, radios


def manager_with_trace(sim, medium, radios, events, initially_offline=(), drain_delay=0.25):
    model = TraceChurn({"events": events, "initially_offline": list(initially_offline)})
    manager = ChurnManager(sim, medium, model, list(radios), horizon=1000.0,
                           drain_delay=drain_delay)
    return manager


def test_manager_graceful_departure_drains_then_detaches():
    sim, medium, radios = micro_world(["a", "b"])
    calls = []
    manager = manager_with_trace(sim, medium, radios, [[10.0, "a", DEPART]])
    manager.register("a", radios["a"], stop=lambda: calls.append(("stop", sim.now)))
    manager.register("b", radios["b"])
    manager.activate()
    sim.run(until=9.0)
    assert "a" in medium.node_ids and manager.online("a")
    sim.run(until=10.1)
    # Stopped (no new work) but still attached for the drain window.
    assert calls == [("stop", 10.0)]
    assert "a" in medium.node_ids and not manager.online("a")
    sim.run(until=11.0)
    assert "a" not in medium.node_ids
    assert manager.departures == 1 and manager.abrupt_kills == 0


def test_manager_abrupt_kill_detaches_instantly():
    sim, medium, radios = micro_world(["a", "b"])
    calls = []
    manager = manager_with_trace(sim, medium, radios, [[10.0, "a", KILL]])
    manager.register("a", radios["a"], stop=lambda: calls.append("stop"),
                     kill=lambda: calls.append("kill"))
    manager.register("b", radios["b"])
    manager.activate()
    sim.run(until=10.1)
    assert calls == ["kill"]  # kill callback wins over stop
    assert "a" not in medium.node_ids
    assert manager.abrupt_kills == 1 and manager.departures == 0


def test_manager_kill_falls_back_to_stop():
    sim, medium, radios = micro_world(["a", "b"])
    calls = []
    manager = manager_with_trace(sim, medium, radios, [[10.0, "a", KILL]])
    manager.register("a", radios["a"], stop=lambda: calls.append("stop"))
    manager.activate()
    sim.run(until=11.0)
    assert calls == ["stop"]


def test_manager_arrival_attaches_and_starts():
    sim, medium, radios = micro_world(["a", "b"])
    calls = []
    manager = manager_with_trace(
        sim, medium, radios, [[10.0, "a", ARRIVE]], initially_offline=["a"]
    )
    manager.register("a", radios["a"], start=lambda: calls.append(("start", sim.now)))
    manager.activate()
    assert "a" not in medium.node_ids and not manager.online("a")
    sim.run(until=10.1)
    assert calls == [("start", 10.0)]
    assert "a" in medium.node_ids and manager.online("a")
    assert manager.arrivals == 1


def test_manager_kill_during_drain_supersedes_it():
    sim, medium, radios = micro_world(["a", "b"])
    manager = manager_with_trace(
        sim, medium, radios, [[10.0, "a", DEPART], [10.1, "a", KILL]], drain_delay=5.0
    )
    manager.register("a", radios["a"])
    manager.activate()
    sim.run(until=20.0)
    # The kill landed mid-drain; the drain completion must not double-detach.
    assert manager.departures == 1 and manager.abrupt_kills == 1
    assert "a" not in medium.node_ids


def test_manager_redundant_events_are_counted_not_raised():
    sim, medium, radios = micro_world(["a", "b"])
    manager = manager_with_trace(
        sim, medium, radios,
        [[10.0, "a", DEPART], [11.0, "a", DEPART], [12.0, "a", KILL],
         [13.0, "b", ARRIVE]],
        drain_delay=5.0,
    )
    manager.register("a", radios["a"])
    manager.register("b", radios["b"])
    manager.activate()
    sim.run(until=20.0)
    # Second depart (draining) and the arrive-while-online are redundant; the
    # kill supersedes the drain and still counts.
    assert manager.redundant_events == 2
    assert manager.departures == 1 and manager.abrupt_kills == 1


def test_manager_rejects_unknown_and_duplicate_registrations():
    sim, medium, radios = micro_world(["a"])
    manager = manager_with_trace(sim, medium, radios, [])
    manager.register("a", radios["a"])
    with pytest.raises(ValueError, match="already registered"):
        manager.register("a", radios["a"])
    with pytest.raises(ValueError, match="churnable set"):
        manager.register("z", radios["a"])


def test_manager_activate_is_idempotent():
    sim, medium, radios = micro_world(["a"])
    manager = manager_with_trace(sim, medium, radios, [[10.0, "a", KILL]])
    manager.register("a", radios["a"])
    manager.activate()
    manager.activate()
    sim.run(until=20.0)
    assert manager.abrupt_kills == 1  # events were scheduled once


def test_manager_metrics_include_medium_orphans():
    sim, medium, radios = micro_world(["a", "b"])
    manager = manager_with_trace(sim, medium, radios, [[1.0, "a", KILL]])
    manager.register("a", radios["a"])
    manager.activate()
    sim.run(until=2.0)
    radios["a"].broadcast("late", 100, kind="t")  # orphaned: radio detached
    metrics = manager.metrics()
    assert metrics["churn.abrupt_kills"] == 1
    assert metrics["churn.orphaned_sends"] == 1


# =========================================================== config plumbing
def test_build_churn_manager_returns_none_for_zero_churn():
    sim, medium, _ = micro_world(["a"])
    config = ExperimentConfig.tiny()
    assert config.churn == "none"
    names = {"downloaders": ["a"], "stationary": [], "pure": [], "intermediate": []}
    assert build_churn_manager(config, sim, medium, names) is None


def test_build_churn_manager_pops_drain_delay_and_validates():
    sim, medium, _ = micro_world(["a"])
    names = {"downloaders": ["p", "a"], "stationary": [], "pure": [], "intermediate": []}
    config = ExperimentConfig.tiny().with_overrides(
        churn="poisson", churn_drain_delay=1.5, churn_mean_session=10.0
    )
    manager = build_churn_manager(config, sim, medium, names)
    assert manager.drain_delay == 1.5
    assert "drain_delay" not in manager.model.params  # a manager knob, not a model param
    bad = config.with_overrides(churn_drain_delay=-1)
    with pytest.raises(ValueError, match="drain_delay"):
        build_churn_manager(bad, sim, medium, names)


def test_churnable_set_protects_the_producer():
    names = {
        "downloaders": ["mobile-0", "mobile-1"],
        "stationary": ["repo-0"],
        "pure": ["fwd-0"],
        "intermediate": ["relay-0"],
    }
    churnable = churnable_node_ids(names)
    assert "mobile-0" not in churnable
    assert set(churnable) == {"mobile-1", "repo-0", "fwd-0", "relay-0"}


def test_churn_override_prefix_merges_params():
    config = ExperimentConfig.tiny().with_overrides(
        churn="poisson", churn_mean_session=30.0
    )
    config = config.with_overrides(churn_mean_offline=5.0)
    assert config.churn == "poisson"
    assert config.churn_params == {"mean_session": 30.0, "mean_offline": 5.0}
    # The literal field name replaces wholesale instead of merging.
    replaced = config.with_overrides(churn_params={"mean_session": 9.0})
    assert replaced.churn_params == {"mean_session": 9.0}


def test_config_roundtrip_carries_churn_fields():
    config = ExperimentConfig.tiny().with_overrides(churn="flashcrowd", churn_bursts=2)
    rebuilt = ExperimentConfig.from_dict(config.as_dict())
    assert rebuilt.churn == "flashcrowd"
    assert rebuilt.churn_params == {"bursts": 2}


# ========================================================== scenario wiring
def test_zero_churn_scenario_has_no_manager():
    scenario = get_builder("dapes").build(ExperimentConfig.tiny(), seed=1)
    assert scenario.churn is None


@pytest.mark.parametrize("protocol", ["dapes", "bithoc", "ekta"])
def test_churn_scenario_registers_all_churnable_nodes(protocol):
    config = ExperimentConfig.tiny().with_overrides(churn="poisson")
    scenario = get_builder(protocol).build(config, seed=1)
    manager = scenario.churn
    assert manager is not None
    assert set(manager._registrations) == set(manager.node_ids)


def test_flashcrowd_scenario_starts_with_churnable_nodes_offline():
    config = ExperimentConfig.tiny().with_overrides(churn="flashcrowd")
    scenario = get_builder("dapes").build(config, seed=1)
    scenario.start()
    # Only the protected producer remains attached at t=0.
    assert list(scenario.medium.node_ids) == [scenario.producer_id]
    scenario.sim.run(until=config.max_duration)
    assert scenario.churn.arrivals == len(scenario.churn.node_ids)


def test_abrupt_kill_mid_run_is_deterministic():
    config = ExperimentConfig.tiny().with_overrides(
        churn="poisson", churn_mean_session=1.0, churn_mean_offline=1.0,
        churn_abrupt_fraction=1.0, max_duration=60.0,
    )
    first = run_protocol_trial("dapes", config, 42)
    second = run_protocol_trial("dapes", config, 42)
    assert first.to_dict() == second.to_dict()
    assert first.extras["churn.abrupt_kills"] > 0


# ===================================================== results & profiling
def test_zero_churn_results_carry_no_churn_extras():
    result = run_protocol_trial("dapes", ExperimentConfig.tiny(), 42)
    assert result.extras == {}
    assert not any(key.startswith("churn.") for key in result.to_dict()["extras"])


def test_aggregate_sums_churn_extras_across_trials():
    trials = [
        RunResult(protocol="dapes", seed=s, download_times={"a": 1.0},
                  extras={"churn.arrivals": 2.0, "churn.abrupt_kills": 1.0})
        for s in (1, 2)
    ]
    point = aggregate_trials("L", {}, trials)
    assert point.extras["churn.arrivals"] == 4.0
    assert point.extras["churn.abrupt_kills"] == 2.0
    zero = aggregate_trials("L", {}, [RunResult(protocol="dapes", seed=1,
                                                download_times={"a": 1.0})])
    assert not any(key.startswith("churn.") for key in zero.extras)


def test_profile_gains_churn_counters_only_with_manager():
    sim, medium, radios = micro_world(["a", "b"])
    baseline = collect_run_profile(sim, medium, 0.0)
    assert not any(key.startswith("churn.") for key in baseline)
    assert "wireless.orphaned_sends" not in baseline
    manager = manager_with_trace(sim, medium, radios, [[1.0, "a", KILL]])
    manager.register("a", radios["a"])
    manager.activate()
    sim.run(until=2.0)
    profile = collect_run_profile(sim, medium, 0.0, churn=manager)
    assert profile["churn.abrupt_kills"] == 1.0
    assert "wireless.orphaned_sends" in profile


def test_store_meta_records_churn_registry(tmp_path):
    from repro.experiments.store import ResultStore
    from repro.experiments.sweep import run_experiment

    config = ExperimentConfig.tiny().with_overrides(trials=1, max_duration=120.0)
    result = run_experiment("fig9a", config, axes={"wifi_range": (80.0,)})
    store = ResultStore(tmp_path)
    record = store.save(result, spec="fig9a", config=config)
    assert record.meta["registries"]["churn"] == "none"


# =============================================================== spec layer
def test_churn_specs_are_registered_and_plannable():
    for name, model in (("churn", "poisson"), ("flashcrowd", "flashcrowd")):
        spec = get_experiment(name)
        plans = spec.plan(ExperimentConfig.tiny())
        assert plans
        for plan in plans:
            assert plan.config.churn == model


def test_churn_spec_axis_reaches_model_params():
    spec = get_experiment("churn")
    plans = spec.plan(ExperimentConfig.tiny(), axes={"mean_session": (45.0,)})
    assert plans[0].config.churn_params["mean_session"] == 45.0
    assert plans[0].parameters["mean_session"] == 45.0


def test_cli_lists_churn_registry(capsys):
    from repro.experiments.__main__ import main

    assert main(["list", "--registries"]) == 0
    out = capsys.readouterr().out
    assert "churn" in out
    assert "poisson" in out and "flashcrowd" in out
