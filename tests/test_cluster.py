"""Distributed sweep cluster: leases, protocol, loopback equivalence, failover.

The load-bearing properties:

* serial == process-pool == loopback-cluster aggregates, byte for byte;
* a worker killed mid-task loses its lease after the TTL, the task
  re-dispatches, and the final aggregate is *still* identical;
* cluster, pool and serial runs resume each other from a shared store;
* concurrent store writers can never leave torn JSON (atomic replace);
* the lease table's failure handling (expiry, capped backoff, poisoning,
  first-completed-wins) is deterministic under an injected clock.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cluster import (
    ClusterClient,
    ClusterTask,
    ClusterWorker,
    Coordinator,
    LeaseTable,
    build_submission_payload,
    render_status,
    task_id,
)
from repro.cluster.errors import ProtocolError
from repro.cluster.protocol import decode_message, encode_message
import repro.experiments.__main__ as cli
from repro.experiments.scenario import ExperimentConfig
from repro.experiments.spec import get_experiment
from repro.experiments.store import ResultStore, TaskCache, _atomic_write_text
from repro.experiments.sweep import SweepRequest, run_suite, task_listing


# ---------------------------------------------------------------- fixtures
class FakeClock:
    """Deterministic monotonic clock tests advance by hand."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def _task(key: str = "t1", **kwargs) -> ClusterTask:
    defaults = dict(
        key=key, submission="s1", request=0, experiment="fig9a",
        point=0, trial=0, seed=42, payload={"key": key},
    )
    defaults.update(kwargs)
    return ClusterTask(**defaults)


def _tiny_request() -> SweepRequest:
    config = ExperimentConfig.tiny().with_overrides(trials=1, max_duration=180.0)
    return SweepRequest(
        spec=get_experiment("fig9a"), config=config, axes={"wifi_range": (40.0,)}
    )


def _tiny_payload(tag=None, resume=True):
    config = ExperimentConfig.tiny().with_overrides(trials=1, max_duration=180.0)
    return build_submission_payload(
        ["fig9a"], config, {"fig9a": {"wifi_range": [40.0]}}, tag=tag, resume=resume
    )


def _run_workers(coordinator, count=2, **kwargs):
    workers = [
        ClusterWorker(
            coordinator.host, coordinator.port, worker_id=f"w{i}",
            exit_when_idle=True, poll_interval=0.05, **kwargs,
        )
        for i in range(count)
    ]
    threads = [threading.Thread(target=worker.run, daemon=True) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    return workers


# ------------------------------------------------------------- lease table
def test_task_id_matches_task_cache_layout():
    assert task_id("fig9a", "abc123", 2, 7) == "fig9a-abc123/task-0002-007"


def test_claim_grants_in_order_and_counts():
    table = LeaseTable(clock=FakeClock())
    table.add(_task("a"))
    table.add(_task("b"))
    first, info = table.claim("w1")
    assert first.key == "a" and info["attempt"] == 1
    second, _ = table.claim("w2")
    assert second.key == "b"
    third, info = table.claim("w3")
    assert third is None and info["pending"] == 0 and info["leased"] == 2
    assert table.profile()["cluster.leases"] == 2.0


def test_heartbeat_keeps_lease_alive_and_silence_expires_it():
    clock = FakeClock()
    table = LeaseTable(clock=clock, lease_ttl=10.0, heartbeat_interval=2.0)
    table.add(_task("a"))
    task, info = table.claim("w1")
    lease = info["lease"]
    # Heartbeats push the deadline: 3 beats at t=8,16,24 keep it alive.
    for _ in range(3):
        clock.advance(8.0)
        assert table.heartbeat("w1", lease) is True
        assert table.expire_stale() == []
    # Silence past the TTL reclaims the lease and re-dispatches the task.
    clock.advance(10.5)
    reclaimed = table.expire_stale()
    assert [t.key for t in reclaimed] == ["a"]
    assert task.state == "pending"
    assert table.heartbeat("w1", lease) is False  # stale lease id
    profile = table.profile()
    assert profile["cluster.expired_leases"] == 1.0
    assert profile["cluster.redispatches"] == 1.0
    assert profile["cluster.heartbeats_missed"] >= 1.0
    # The re-dispatched task is immediately claimable (no backoff on expiry).
    again, info = table.claim("w2")
    assert again.key == "a" and info["attempt"] == 2


def test_worker_reported_failures_back_off_then_poison():
    clock = FakeClock()
    table = LeaseTable(
        clock=clock, max_attempts=3, backoff_base=1.0, backoff_cap=3.0
    )
    table.add(_task("a"))
    delays = []
    for attempt in range(1, 3):
        task, _ = table.claim("w1")
        assert task is not None
        _, info = table.fail("a", "w1", f"boom {attempt}")
        delays.append(info["retry_after"])
        # Not claimable until the backoff elapses.
        blocked, info = table.claim("w1")
        assert blocked is None and info["retry_after"] == pytest.approx(delays[-1])
        clock.advance(delays[-1] + 0.01)
    assert delays == pytest.approx([1.0, 2.0])  # backoff_base * 2**(attempts-1)
    task, _ = table.claim("w1")
    _, info = table.fail("a", "w1", "boom 3")
    assert info == {"poisoned": True}
    assert table.get("a").state == "failed"
    assert "boom 3" in table.get("a").error
    none, _ = table.claim("w1")
    assert none is None  # poisoned tasks never re-dispatch


def test_backoff_is_capped():
    clock = FakeClock()
    table = LeaseTable(clock=clock, max_attempts=10, backoff_base=1.0, backoff_cap=4.0)
    table.add(_task("a"))
    seen = []
    for _ in range(5):
        task, _ = table.claim("w1")
        _, info = table.fail("a", "w1", "boom")
        seen.append(info["retry_after"])
        clock.advance(info["retry_after"] + 0.01)
    assert seen == pytest.approx([1.0, 2.0, 4.0, 4.0, 4.0])


def test_first_completed_wins_and_late_uploads_are_redundant():
    clock = FakeClock()
    table = LeaseTable(clock=clock, lease_ttl=5.0)
    table.add(_task("a"))
    table.claim("w1")
    clock.advance(6.0)
    table.expire_stale()  # w1 presumed dead; task re-dispatched
    table.claim("w2")
    _, accepted = table.complete("a", "w2")
    assert accepted is True
    # w1 finished after all and uploads late: acknowledged, not merged.
    _, accepted = table.complete("a", "w1")
    assert accepted is False
    assert table.profile()["cluster.redundant_results"] == 1.0
    history = [(record.worker, record.outcome) for record in table.get("a").history]
    assert history == [("w1", "expired"), ("w2", "completed")]


def test_expiry_exhausting_attempts_poisons():
    clock = FakeClock()
    table = LeaseTable(clock=clock, lease_ttl=1.0, max_attempts=2)
    table.add(_task("a"))
    for _ in range(2):
        task, _ = table.claim("w1")
        assert task is not None
        clock.advance(1.5)
        table.expire_stale()
    assert table.get("a").state == "failed"
    assert "expired" in table.get("a").error


# ---------------------------------------------------------------- protocol
def test_message_round_trip_and_junk_rejection():
    message = {"op": "claim", "worker": "w1", "n": 3}
    assert decode_message(encode_message(message)) == message
    with pytest.raises(ProtocolError):
        decode_message(b"not json\n")
    with pytest.raises(ProtocolError):
        decode_message(b'["a", "list"]\n')


def test_coordinator_rejects_unknown_ops_and_versions():
    coordinator = Coordinator(store=ResultStore("unused-root"))
    reply = coordinator.handle({"op": "frobnicate"})
    assert reply["ok"] is False and "unknown op" in reply["error"]
    reply = coordinator.handle({"op": "claim", "proto": 99})
    assert reply["ok"] is False and "version" in reply["error"]


# ------------------------------------------------------------ atomic store
def test_atomic_write_crash_mid_write_leaves_old_content(tmp_path, monkeypatch):
    """A crash between tmp-write and rename must leave the old file intact."""
    target = tmp_path / "task.json"
    _atomic_write_text(target, '{"v": 1}')

    import repro.experiments.store as store_mod

    def exploding_replace(src, dst):
        raise OSError("simulated crash mid-write")

    monkeypatch.setattr(store_mod.os, "replace", exploding_replace)
    with pytest.raises(OSError, match="simulated crash"):
        _atomic_write_text(target, '{"v": 2}')
    monkeypatch.undo()
    assert json.loads(target.read_text()) == {"v": 1}  # old content intact
    assert list(tmp_path.glob("*.tmp")) == []  # stray temp cleaned up


def test_concurrent_task_cache_writers_never_tear_json(tmp_path):
    """Racing writers flushing the same key must always leave parseable JSON."""
    from repro.experiments.metrics import RunResult

    cache = TaskCache(tmp_path).ensure()
    results = [
        RunResult(protocol="DAPES", seed=7, parameters={"w": writer},
                  download_times={"a": float(writer)}, duration=1.0)
        for writer in range(4)
    ]
    errors = []

    def hammer(result):
        try:
            for _ in range(50):
                cache.store("fig9a", 0, 0, 7, result)
                loaded = cache.load(0, 0, 7)
                assert loaded is not None  # a torn file would read back None
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=hammer, args=(result,)) for result in results]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert errors == []
    final = json.loads(cache.path(0, 0).read_text())
    assert final["result"]["download_times"] == {"a": float(final["result"]["parameters"]["w"])}
    assert list(tmp_path.glob("*.tmp")) == []


# ------------------------------------------------------ fallback warnings
def _unpicklable_spec():
    from repro.experiments.metrics import RunResult
    from repro.experiments.spec import ExperimentSpec, Variant

    def fake_trial(protocol, config, seed, parameters):  # closure: unpicklable
        return RunResult(protocol=protocol, seed=seed, parameters=dict(parameters),
                         download_times={"a": 1.0}, duration=1.0)

    return ExperimentSpec(
        name="_cluster_unpicklable", title="t", description="",
        variants=(Variant(label="only"),), trial_fn=fake_trial,
    )


def test_serial_fallback_warning_names_pickle_failure_with_pool():
    config = ExperimentConfig.tiny().with_overrides(trials=2)
    with pytest.warns(RuntimeWarning, match="pickle round-trip"):
        run_suite([SweepRequest(spec=_unpicklable_spec(), config=config)], workers=4)


def test_serial_fallback_warning_names_workers_1_without_pool():
    config = ExperimentConfig.tiny().with_overrides(trials=2)
    with pytest.warns(RuntimeWarning, match="workers=1 disables"):
        run_suite([SweepRequest(spec=_unpicklable_spec(), config=config)], workers=1)


# ----------------------------------------------------------------- dry run
def test_task_listing_matches_scheduler_grid(tmp_path):
    request = _tiny_request()
    rows = task_listing([request])
    assert len(rows) == 4  # 4 fig9a variants x 1 trial
    assert all(not row["cached"] for row in rows)
    # The listing's task keys are exactly the TaskCache files a run creates.
    store = ResultStore(tmp_path)
    run_suite([request], workers=1, store=store)
    for row in rows:
        directory, _, stem = row["task"].partition("/")
        assert (tmp_path / "tasks" / directory / f"{stem}.json").is_file()
    cached_rows = task_listing([request], store=store)
    assert all(row["cached"] for row in cached_rows)


def test_cli_run_dry_run_prints_grid_without_executing(tmp_path, capsys):
    store_dir = tmp_path / "store"
    rc = cli.main([
        "run", "fig9a", "--preset", "tiny", "--trials", "1",
        "--axis", "wifi_range=40", "--store", str(store_dir), "--dry-run",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "nothing executed" in out
    assert "task-0000-000" in out and "fig9a-" in out
    assert not (store_dir / "runs").exists()  # truly nothing ran or persisted


# ------------------------------------------------------ loopback equivalence
def test_cluster_matches_serial_and_pool_byte_for_byte(tmp_path):
    serial_store = ResultStore(tmp_path / "serial")
    [serial] = run_suite([_tiny_request()], workers=1, store=serial_store, tag="serial")
    [pooled] = run_suite([_tiny_request()], workers=2)
    assert pooled.to_json() == serial.to_json()

    cluster_store = ResultStore(tmp_path / "cluster")
    coordinator = Coordinator(store=cluster_store, port=0).start()
    try:
        reply = coordinator.handle({"op": "submit", **_tiny_payload(tag="cluster")})
        assert reply["ok"] and reply["tasks"] == 4
        workers = _run_workers(coordinator, count=2)
        assert coordinator.wait(timeout=120)
        assert sum(worker.executed for worker in workers) == 4
        snapshot = coordinator.status()
    finally:
        coordinator.stop()
    assert snapshot["tasks"]["done"] == 4 and snapshot["tasks"]["failed"] == 0
    clustered = cluster_store.load("fig9a@cluster")
    assert clustered.to_json() == serial.to_json()
    # Cluster provenance rides in the stored run's metadata header.
    record = cluster_store.resolve("fig9a@cluster")
    assert set(record.meta["cluster"]["workers"]) <= {"w0", "w1"}
    assert record.meta["cluster"]["submission"] == "s1"
    # The status renderer covers the same snapshot.
    text = render_status(snapshot)
    assert "done=4" in text and "w0" in text and "s1" in text


def test_cluster_resumes_a_serial_run_from_the_shared_store(tmp_path):
    store = ResultStore(tmp_path)
    [serial] = run_suite([_tiny_request()], workers=1, store=store, tag="serial")
    coordinator = Coordinator(store=store, port=0).start()
    try:
        # Every task is already satisfied by the store's task cache: the
        # submission finalizes instantly without any worker.
        reply = coordinator.handle({"op": "submit", **_tiny_payload(tag="cluster")})
        assert reply["ok"] and reply["tasks"] == 0 and reply["resumed"] == 4
        assert coordinator.wait(timeout=10)
    finally:
        coordinator.stop()
    resumed = store.load("fig9a@cluster")
    assert resumed.to_json() == serial.to_json()
    # Identical content ⇒ same content key: both tags on one stored run.
    record = store.resolve("fig9a@cluster")
    assert set(record.tags) == {"cluster", "serial"}


def test_worker_killed_mid_task_redispatches_and_aggregate_is_identical(tmp_path):
    serial_store = ResultStore(tmp_path / "serial")
    [serial] = run_suite([_tiny_request()], workers=1, store=serial_store)

    clock = FakeClock()
    cluster_store = ResultStore(tmp_path / "cluster")
    coordinator = Coordinator(
        store=cluster_store, port=0, lease_ttl=5.0, clock=clock, profile=True
    ).start()
    try:
        reply = coordinator.handle({"op": "submit", **_tiny_payload(tag="cluster")})
        assert reply["tasks"] == 4
        # An abruptly-killed worker: claims a task, then never heartbeats,
        # never uploads (the process is gone).
        dead = ClusterClient(coordinator.host, coordinator.port)
        dead.request("register", worker="dead")
        victim = dead.request("claim", worker="dead")["task"]
        assert victim is not None
        # Its lease expires once the TTL passes with no heartbeat ...
        clock.advance(coordinator.lease_ttl + 1.0)
        # ... and a healthy worker picks up the re-dispatched task along
        # with the rest of the grid.
        _run_workers(coordinator, count=1)
        assert coordinator.wait(timeout=120)
        snapshot = coordinator.status()
    finally:
        coordinator.stop()
    assert snapshot["tasks"]["done"] == 4 and snapshot["tasks"]["failed"] == 0
    assert snapshot["profile"]["cluster.expired_leases"] == 1.0
    assert snapshot["profile"]["cluster.redispatches"] == 1.0
    clustered = cluster_store.load("fig9a@cluster")
    assert clustered.to_json() == serial.to_json()  # identical despite the kill
    # Provenance records the second attempt on the victim task.
    record = cluster_store.resolve("fig9a@cluster")
    assert record.meta["cluster"]["attempts"] == {victim["key"]: 2}
    [(worker_1, worker_2)] = [
        tuple(entry["worker"] for entry in history)
        for history in record.meta["cluster"]["lease_history"].values()
    ]
    assert (worker_1, worker_2) == ("dead", "w0")


def test_duplicate_in_flight_submission_is_rejected(tmp_path):
    coordinator = Coordinator(store=ResultStore(tmp_path), port=0)
    coordinator.handle({"op": "submit", **_tiny_payload()})
    reply = coordinator.handle({"op": "submit", **_tiny_payload()})
    assert reply["ok"] is False and "already in flight" in reply["error"]


def test_worker_reported_failure_poisons_submission(tmp_path):
    coordinator = Coordinator(store=ResultStore(tmp_path), port=0, max_attempts=1)
    coordinator.handle({"op": "submit", **_tiny_payload()})
    coordinator.handle({"op": "register", "worker": "w1"})
    poisoned = 0
    while True:  # a hopeless worker: every task it claims blows up
        task = coordinator.handle({"op": "claim", "worker": "w1"})["task"]
        if task is None:
            break
        reply = coordinator.handle(
            {"op": "fail", "worker": "w1", "task": task["key"], "error": "kaboom"}
        )
        assert reply["poisoned"] is True
        poisoned += 1
    assert poisoned == 4
    status = coordinator.status()
    [submission] = [s for s in status["submissions"] if s["id"] == "s1"]
    assert submission["state"] == "failed"
    assert any("kaboom" in error for error in submission["errors"])
    assert submission["stored"] == []  # a poisoned grid never aggregates
