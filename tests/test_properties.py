"""Property-based tests (hypothesis) for the core data structures and invariants."""

import json
import string

from hypothesis import given, settings, strategies as st

from repro.core import Bitmap, DapesNamespace
from repro.core.metadata import build_metadata
from repro.core.peba import PebaScheduler, peba_average_delay
from repro.crypto import KeyPair, MerkleTree, sign, verify
from repro.experiments.metrics import percentile
from repro.ndn import Data, Interest, Name
from repro.ndn.tlv import decode_data, decode_interest, encode_data, encode_interest

name_components = st.lists(
    st.text(alphabet=string.ascii_lowercase + string.digits + "-_.", min_size=1, max_size=12),
    min_size=0,
    max_size=6,
)


# ----------------------------------------------------------------------- names
@given(name_components)
def test_name_string_roundtrip(components):
    name = Name(components)
    assert Name(str(name)) == name
    assert len(name) == len(components)


@given(name_components, name_components)
def test_name_prefix_relation(components, extra):
    base = Name(components)
    longer = base.append(*extra) if extra else base
    assert base.is_prefix_of(longer)
    if extra:
        assert len(longer) == len(base) + len(Name(extra))


@given(name_components)
def test_name_prefix_of_itself_and_parent(components):
    name = Name(components)
    for length in range(len(name) + 1):
        assert name.prefix(length).is_prefix_of(name)


# ------------------------------------------------------------------------- TLV
@given(name_components, st.integers(min_value=1, max_value=255), st.booleans(),
       st.binary(max_size=64))
def test_interest_tlv_roundtrip(components, hop_limit, can_be_prefix, params)\
        :
    interest = Interest(
        name=Name(components),
        hop_limit=hop_limit,
        can_be_prefix=can_be_prefix,
        application_parameters=params if params else None,
        application_parameters_size=len(params),
    )
    decoded = decode_interest(encode_interest(interest))
    assert decoded.name == interest.name
    assert decoded.nonce == interest.nonce
    assert decoded.hop_limit == hop_limit
    assert decoded.can_be_prefix == can_be_prefix


@given(name_components, st.binary(max_size=256))
def test_data_tlv_roundtrip(components, content):
    key = KeyPair.generate("/p", seed=b"prop")
    name = Name(components)
    data = Data(name=name, content=content, signature=sign(str(name), content, key))
    decoded = decode_data(encode_data(data))
    assert decoded.name == name
    assert decoded.content == content
    assert verify(str(name), content, decoded.signature)


# --------------------------------------------------------------------- bitmaps
@given(st.integers(min_value=0, max_value=300), st.data())
def test_bitmap_roundtrip_and_counts(size, data):
    ones = data.draw(st.sets(st.integers(min_value=0, max_value=max(size - 1, 0)), max_size=size)) if size else set()
    bitmap = Bitmap(size, set_bits=ones)
    assert bitmap.count() == len(ones)
    assert bitmap.count() + bitmap.missing_count() == size
    assert Bitmap.from_bytes(size, bitmap.to_bytes()) == bitmap
    assert set(bitmap.ones()) == ones


@given(st.integers(min_value=1, max_value=128), st.data())
def test_bitmap_set_algebra_laws(size, data):
    ones_a = data.draw(st.sets(st.integers(min_value=0, max_value=size - 1)))
    ones_b = data.draw(st.sets(st.integers(min_value=0, max_value=size - 1)))
    a, b = Bitmap(size, ones_a), Bitmap(size, ones_b)
    assert set(a.union(b).ones()) == ones_a | ones_b
    assert set(a.intersection(b).ones()) == ones_a & ones_b
    assert set(a.difference(b).ones()) == ones_a - ones_b
    # The union is never smaller than either operand.
    assert a.union(b).count() >= max(a.count(), b.count())


# ---------------------------------------------------------------------- merkle
@given(st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=24))
@settings(max_examples=50)
def test_merkle_proofs_verify_for_all_leaves(leaves):
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        assert MerkleTree.verify_proof(leaf, tree.proof(index), tree.root)


@given(st.lists(st.binary(min_size=1, max_size=16), min_size=2, max_size=16), st.data())
@settings(max_examples=50)
def test_merkle_root_detects_any_single_leaf_change(leaves, data):
    index = data.draw(st.integers(min_value=0, max_value=len(leaves) - 1))
    mutated = list(leaves)
    mutated[index] = mutated[index] + b"x"
    assert MerkleTree.root_of(leaves) != MerkleTree.root_of(mutated)


# -------------------------------------------------------------------- metadata
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.integers(min_value=0, max_value=10 ** 6),
        ),
        min_size=1,
        max_size=6,
    ),
    st.sampled_from(["digest", "merkle"]),
)
@settings(max_examples=40)
def test_metadata_index_mapping_is_a_bijection(file_specs, metadata_format):
    file_packets = []
    for file_index, (packet_count, salt) in enumerate(file_specs):
        packets = [f"{salt}-{file_index}-{i}".encode() for i in range(packet_count)]
        file_packets.append((f"file-{file_index}", packets))
    metadata = build_metadata("coll", file_packets, metadata_format, "/p", 1024)
    assert metadata.total_packets == sum(count for count, _ in file_specs)
    seen_names = set()
    for index in range(metadata.total_packets):
        name = metadata.packet_name(index)
        assert name not in seen_names
        seen_names.add(name)
        assert metadata.packet_index_of(name) == index
        file_name, sequence = metadata.locate(index)
        assert metadata.global_index(file_name, sequence) == index
    # Round trip through the wire encoding preserves the mapping.
    decoded = type(metadata).decode(metadata.encode())
    assert decoded.total_packets == metadata.total_packets
    assert decoded.packet_name(0) == metadata.packet_name(0)


# ------------------------------------------------------------------- namespace
@given(
    st.text(alphabet=string.ascii_lowercase + "-", min_size=1, max_size=16).filter(lambda s: s.strip("-")),
    st.integers(min_value=0, max_value=2 ** 31),
    st.text(alphabet=string.ascii_lowercase + "-", min_size=1, max_size=16),
    st.integers(min_value=0, max_value=10_000),
)
def test_packet_name_parse_roundtrip(label, timestamp, file_name, sequence):
    collection = DapesNamespace.collection_name(label, timestamp)
    name = DapesNamespace.packet_name(collection, file_name, sequence)
    parsed = DapesNamespace.parse_packet_name(name)
    assert parsed is not None
    assert parsed.collection == collection[0]
    assert parsed.file_name == file_name
    assert parsed.sequence == sequence
    assert DapesNamespace.classify(name) == "collection-data"


# ------------------------------------------------------------------------ PEBA
@given(
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=1000),
    st.integers(min_value=0, max_value=6),
)
@settings(max_examples=100)
def test_peba_delays_are_bounded(useful, missing, collisions):
    scheduler = PebaScheduler(transmission_window=0.020, slot_duration=0.004,
                              initial_slots=2, max_slots=64)
    for _ in range(collisions):
        scheduler.record_collision()
    decision = scheduler.schedule(useful, missing)
    assert decision.delay >= 0.0
    if decision.used_backoff:
        assert decision.slot is not None and 0 <= decision.slot < 64
        assert decision.delay <= 64 * 0.004
    else:
        assert decision.delay <= 0.020 / 1e-2 + 1e-9


@given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=8))
def test_peba_average_delay_non_negative_and_monotone_in_slots(slots, groups):
    tau = 0.004
    delay = peba_average_delay(slots, groups, tau)
    assert delay >= 0.0
    assert peba_average_delay(slots * 2, groups, tau) >= delay


# ------------------------------------------------------------------ percentile
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50),
       st.floats(min_value=0, max_value=100))
def test_percentile_bounded_by_min_and_max(values, q):
    result = percentile(values, q)
    assert min(values) - 1e-9 <= result <= max(values) + 1e-9


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
def test_percentile_extremes(values):
    assert percentile(values, 0) == min(values)
    assert percentile(values, 100) == max(values)
