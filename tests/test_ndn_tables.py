"""Unit tests for the Content Store, PIT and FIB."""

import pytest

from repro.ndn import ContentStore, Data, Fib, Interest, Name, Pit


# --------------------------------------------------------------- content store
def test_cs_insert_and_exact_match():
    cs = ContentStore(capacity=10)
    data = Data(name=Name("/a/0"), content=b"x")
    cs.insert(data)
    assert cs.find(Interest(name=Name("/a/0"))) is data
    assert cs.hits == 1


def test_cs_miss_counted():
    cs = ContentStore()
    assert cs.find(Interest(name=Name("/missing"))) is None
    assert cs.misses == 1


def test_cs_prefix_match_with_can_be_prefix():
    cs = ContentStore()
    cs.insert(Data(name=Name("/a/b/1"), content=b"x"))
    assert cs.find(Interest(name=Name("/a/b"), can_be_prefix=True)) is not None
    assert cs.find(Interest(name=Name("/a/b"))) is None


def test_cs_lru_eviction():
    cs = ContentStore(capacity=2)
    cs.insert(Data(name=Name("/1"), content=b"1"))
    cs.insert(Data(name=Name("/2"), content=b"2"))
    cs.find(Interest(name=Name("/1")))  # touch /1 so /2 becomes LRU
    cs.insert(Data(name=Name("/3"), content=b"3"))
    assert Name("/1") in cs
    assert Name("/2") not in cs
    assert Name("/3") in cs
    assert cs.evictions == 1


def test_cs_zero_capacity_stores_nothing():
    cs = ContentStore(capacity=0)
    cs.insert(Data(name=Name("/a"), content=b"x"))
    assert len(cs) == 0


def test_cs_reinsert_same_name_refreshes():
    cs = ContentStore(capacity=2)
    cs.insert(Data(name=Name("/a"), content=b"old"))
    cs.insert(Data(name=Name("/a"), content=b"new"))
    assert len(cs) == 1
    assert cs.get("/a").content == b"new"


def test_cs_size_bytes_nonzero():
    cs = ContentStore()
    cs.insert(Data(name=Name("/a"), content=b"x" * 100))
    assert cs.size_bytes > 100


# ------------------------------------------------------------------------- pit
def test_pit_insert_new_entry():
    pit = Pit()
    interest = Interest(name=Name("/a/0"))
    entry, is_new, is_loop = pit.insert(interest, incoming_face_id=1, now=0.0)
    assert is_new and not is_loop
    assert entry.in_faces == {1}
    assert len(pit) == 1


def test_pit_aggregates_second_face():
    pit = Pit()
    pit.insert(Interest(name=Name("/a/0")), 1, now=0.0)
    entry, is_new, is_loop = pit.insert(Interest(name=Name("/a/0")), 2, now=0.5)
    assert not is_new and not is_loop
    assert entry.in_faces == {1, 2}
    assert pit.aggregations == 1


def test_pit_detects_looped_nonce():
    pit = Pit()
    interest = Interest(name=Name("/a/0"))
    pit.insert(interest, 1, now=0.0)
    _, _, is_loop = pit.insert(interest, 2, now=0.1)
    assert is_loop
    assert pit.loops_detected == 1


def test_pit_retransmission_from_same_face_refreshes_expiry():
    pit = Pit()
    interest = Interest(name=Name("/a/0"), lifetime=1.0)
    entry, _, _ = pit.insert(interest, 1, now=0.0)
    first_expiry = entry.expiry
    pit.insert(interest, 1, now=0.5)
    assert entry.expiry > first_expiry


def test_pit_satisfy_removes_matching_entries():
    pit = Pit()
    pit.insert(Interest(name=Name("/a/0")), 1, now=0.0)
    pit.insert(Interest(name=Name("/b/0")), 1, now=0.0)
    satisfied = pit.satisfy(Data(name=Name("/a/0"), content=b""))
    assert [entry.name for entry in satisfied] == [Name("/a/0")]
    assert Name("/a/0") not in pit
    assert Name("/b/0") in pit


def test_pit_prefix_entry_matches_longer_data():
    pit = Pit()
    pit.insert(Interest(name=Name("/a"), can_be_prefix=True), 1, now=0.0)
    satisfied = pit.satisfy(Data(name=Name("/a/b/c"), content=b""))
    assert len(satisfied) == 1


def test_pit_expire_removes_old_entries():
    pit = Pit()
    pit.insert(Interest(name=Name("/a"), lifetime=1.0), 1, now=0.0)
    pit.insert(Interest(name=Name("/b"), lifetime=10.0), 1, now=0.0)
    expired = pit.expire(now=5.0)
    assert [entry.name for entry in expired] == [Name("/a")]
    assert pit.expirations == 1
    assert Name("/b") in pit


def test_pit_size_bytes_positive():
    pit = Pit()
    pit.insert(Interest(name=Name("/a/b/c")), 1, now=0.0)
    assert pit.size_bytes > 0


# ------------------------------------------------------------------------- fib
def test_fib_longest_prefix_match_prefers_longer_prefix():
    fib = Fib()
    fib.insert("/a", face_id=1)
    fib.insert("/a/b", face_id=2)
    hops = fib.longest_prefix_match("/a/b/c")
    assert [hop.face_id for hop in hops] == [2]


def test_fib_no_match_returns_empty():
    fib = Fib()
    fib.insert("/a", face_id=1)
    assert fib.longest_prefix_match("/other") == []


def test_fib_multiple_next_hops_sorted_by_cost():
    fib = Fib()
    fib.insert("/a", face_id=1, cost=10)
    fib.insert("/a", face_id=2, cost=1)
    hops = fib.longest_prefix_match("/a/x")
    assert [hop.face_id for hop in hops] == [2, 1]


def test_fib_insert_same_face_updates_cost():
    fib = Fib()
    fib.insert("/a", face_id=1, cost=10)
    fib.insert("/a", face_id=1, cost=1)
    hops = fib.longest_prefix_match("/a")
    assert len(hops) == 1
    assert hops[0].cost == 1


def test_fib_remove_prefix_and_single_hop():
    fib = Fib()
    fib.insert("/a", face_id=1)
    fib.insert("/a", face_id=2)
    fib.remove("/a", face_id=1)
    assert [hop.face_id for hop in fib.longest_prefix_match("/a")] == [2]
    fib.remove("/a")
    assert fib.longest_prefix_match("/a") == []
    assert len(fib) == 0
