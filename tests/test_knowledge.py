"""Unit tests for the neighbour-knowledge store (Section V)."""

from repro.core import Bitmap, NeighborKnowledge


def test_observe_bitmap_and_query():
    knowledge = NeighborKnowledge(timeout=10.0)
    knowledge.observe_bitmap("peer-1", "coll", Bitmap(4, set_bits=[1, 2]), now=0.0)
    assert knowledge.neighbor_bitmap("peer-1", "coll", now=1.0).ones() == [1, 2]
    assert knowledge.neighbors_with_collection("coll", now=1.0) == ["peer-1"]
    assert knowledge.someone_has_packet("coll", 1, now=1.0)
    assert not knowledge.someone_has_packet("coll", 3, now=1.0)


def test_entries_expire_after_timeout():
    knowledge = NeighborKnowledge(timeout=5.0)
    knowledge.observe_bitmap("peer-1", "coll", Bitmap(4, set_bits=[0]), now=0.0)
    assert knowledge.neighbor_bitmap("peer-1", "coll", now=20.0) is None
    assert not knowledge.someone_has_packet("coll", 0, now=20.0)
    assert knowledge.neighbors_with_collection("coll", now=20.0) == []


def test_exclude_filters_neighbours():
    knowledge = NeighborKnowledge()
    knowledge.observe_bitmap("requester", "coll", Bitmap(4, set_bits=[0]), now=0.0)
    assert not knowledge.someone_has_packet("coll", 0, now=1.0, exclude={"requester"})
    assert knowledge.known_bitmaps("coll", now=1.0, exclude={"requester"}) == []


def test_observe_interest_marks_interest_without_bitmap():
    knowledge = NeighborKnowledge()
    knowledge.observe_interest("peer-2", "coll", now=0.0)
    assert knowledge.neighbors_with_collection("coll", now=1.0) == ["peer-2"]
    assert knowledge.neighbor_bitmap("peer-2", "coll", now=1.0) is None


def test_observe_data_marks_collection_nearby():
    knowledge = NeighborKnowledge(timeout=5.0)
    knowledge.observe_data("coll", 7, now=0.0)
    assert knowledge.data_recently_heard("coll", now=2.0)
    assert knowledge.data_recently_heard("coll", now=2.0, packet_index=7)
    assert knowledge.knows_collection("coll", now=2.0)
    assert not knowledge.data_recently_heard("coll", now=20.0)


def test_forget_neighbor_removes_records():
    knowledge = NeighborKnowledge()
    knowledge.observe_bitmap("peer-1", "coll", Bitmap(4, set_bits=[0]), now=0.0)
    knowledge.observe_bitmap("peer-1", "other", Bitmap(4, set_bits=[0]), now=0.0)
    knowledge.forget_neighbor("peer-1")
    assert len(knowledge) == 0


def test_prune_removes_stale_entries():
    knowledge = NeighborKnowledge(timeout=5.0)
    knowledge.observe_bitmap("old", "coll", Bitmap(4), now=0.0)
    knowledge.observe_bitmap("new", "coll", Bitmap(4), now=9.0)
    knowledge.observe_data("coll", None, now=0.0)
    removed = knowledge.prune(now=10.0)
    assert removed >= 1
    assert knowledge.neighbors_with_collection("coll", now=10.0) == ["new"]


def test_state_size_counts_bitmaps():
    knowledge = NeighborKnowledge()
    knowledge.observe_bitmap("p", "coll", Bitmap(800), now=0.0)
    assert knowledge.state_size_bytes >= 100
