"""Unit and integration tests for the DAPES peer application."""

import pytest

from repro.core import CollectionBuilder, DapesConfig, build_dapes_peer, build_repository
from repro.crypto import KeyPair, TrustAnchorStore
from repro.mobility import ScriptedMobility, StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


def build_collection(files=1, file_size=8 * 1024, label="damaged-bridge"):
    builder = CollectionBuilder(label, 1533783192, packet_size=1024, producer="/residents/producer")
    for index in range(files):
        builder.add_file(f"file-{index}", size_bytes=file_size)
    return builder.build()


def build_pair(loss_rate=0.0, config=None, seed=3):
    sim = Simulator(seed=seed)
    mobility = StaticPlacement({"producer": (0, 0), "downloader": (20, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=loss_rate))
    key = KeyPair.generate("/residents/producer", seed=b"producer-key")
    trust = TrustAnchorStore()
    trust.add_anchor_key(key)
    config = config or DapesConfig()
    producer = build_dapes_peer(sim, medium, "producer", config=config, trust=trust, key=key)
    downloader = build_dapes_peer(sim, medium, "downloader", config=config, trust=trust)
    return sim, medium, producer, downloader, trust


# ------------------------------------------------------------------ publishing
def test_publish_collection_creates_complete_session():
    sim, medium, producer, downloader, _ = build_pair()
    metadata = producer.peer.publish_collection(build_collection())
    session = producer.peer.sessions[metadata.collection]
    assert session.producer
    assert session.store.is_complete()
    assert session.metadata_segments  # signed metadata ready to serve
    assert producer.peer.has_metadata(metadata.collection)
    assert producer.peer.has_packet(metadata.collection, metadata.packet_name(0))


def test_metadata_segments_are_signed_by_producer_key(producer_key):
    sim, medium, producer, downloader, trust = build_pair()
    metadata = producer.peer.publish_collection(build_collection())
    session = producer.peer.sessions[metadata.collection]
    for segment in session.metadata_segments.values():
        assert trust.authenticate(str(segment.name), segment.content, segment.signature)


# ------------------------------------------------------------------ end-to-end
def test_two_peer_download_over_lossless_channel():
    sim, medium, producer, downloader, _ = build_pair()
    metadata = producer.peer.publish_collection(build_collection())
    downloader.peer.join(metadata.collection)
    producer.start()
    downloader.start()
    sim.run(until=60.0)
    assert downloader.peer.progress(metadata.collection) == 1.0
    assert downloader.peer.download_time(metadata.collection) is not None
    assert metadata.collection in downloader.peer.completed_collections


def test_two_peer_download_over_lossy_channel():
    sim, medium, producer, downloader, _ = build_pair(loss_rate=0.2, seed=4)
    metadata = producer.peer.publish_collection(build_collection())
    downloader.peer.join(metadata.collection)
    producer.start()
    downloader.start()
    sim.run(until=240.0)
    assert downloader.peer.progress(metadata.collection) == 1.0
    assert downloader.peer.load.retransmissions > 0


def test_digest_metadata_format_end_to_end():
    config = DapesConfig(metadata_format="digest")
    sim, medium, producer, downloader, _ = build_pair(config=config)
    metadata = producer.peer.publish_collection(build_collection())
    downloader.peer.join(metadata.collection)
    producer.start()
    downloader.start()
    sim.run(until=90.0)
    assert downloader.peer.progress(metadata.collection) == 1.0


def test_untrusted_producer_is_rejected():
    sim = Simulator(seed=5)
    mobility = StaticPlacement({"producer": (0, 0), "downloader": (20, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    rogue_key = KeyPair.generate("/rogue", seed=b"rogue")
    empty_trust = TrustAnchorStore()  # the downloader trusts nobody
    config = DapesConfig()
    producer = build_dapes_peer(sim, medium, "producer", config=config, trust=empty_trust, key=rogue_key)
    downloader = build_dapes_peer(sim, medium, "downloader", config=config, trust=empty_trust)
    metadata = producer.peer.publish_collection(build_collection())
    downloader.peer.join(metadata.collection)
    producer.start()
    downloader.start()
    sim.run(until=30.0)
    session = downloader.peer.sessions[metadata.collection]
    assert session.distrusted
    assert session.metadata is None
    assert downloader.peer.progress(metadata.collection) == 0.0


def test_download_time_none_before_completion():
    sim, medium, producer, downloader, _ = build_pair()
    metadata = producer.peer.publish_collection(build_collection())
    downloader.peer.join(metadata.collection)
    assert downloader.peer.download_time(metadata.collection) is None
    assert downloader.peer.progress(metadata.collection) == 0.0


def test_completion_callback_fired_once():
    sim, medium, producer, downloader, _ = build_pair()
    metadata = producer.peer.publish_collection(build_collection())
    downloader.peer.join(metadata.collection)
    completions = []
    downloader.peer.on_collection_complete(lambda peer, cid, when: completions.append((peer.node_id, cid)))
    producer.start()
    downloader.start()
    sim.run(until=60.0)
    assert completions == [("downloader", metadata.collection)]


def test_discovery_period_adapts_to_neighbour_presence():
    sim, medium, producer, downloader, _ = build_pair()
    peer = downloader.peer
    assert peer._discovery_period() == peer.config.discovery_period_idle
    peer._touch_neighbor("producer")
    assert peer._discovery_period() == peer.config.discovery_period_active


def test_third_peer_benefits_from_overhearing():
    """Two downloaders next to each other: one transmission can serve both."""
    sim = Simulator(seed=6)
    mobility = StaticPlacement({"producer": (0, 0), "d1": (20, 0), "d2": (25, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    key = KeyPair.generate("/residents/producer", seed=b"producer-key")
    trust = TrustAnchorStore()
    trust.add_anchor_key(key)
    config = DapesConfig()
    producer = build_dapes_peer(sim, medium, "producer", config=config, trust=trust, key=key)
    d1 = build_dapes_peer(sim, medium, "d1", config=config, trust=trust)
    d2 = build_dapes_peer(sim, medium, "d2", config=config, trust=trust)
    metadata = producer.peer.publish_collection(build_collection(file_size=16 * 1024))
    d1.peer.join(metadata.collection)
    d2.peer.join(metadata.collection)
    for node in (producer, d1, d2):
        node.start()
    sim.run(until=120.0)
    assert d1.peer.progress(metadata.collection) == 1.0
    assert d2.peer.progress(metadata.collection) == 1.0
    overheard = d1.peer.load.packets_overheard + d2.peer.load.packets_overheard
    assert overheard > 0, "broadcast data should serve peers that did not request it"
    total_packets = metadata.total_packets
    # Far fewer data transmissions than two fully independent downloads with
    # per-packet request/response and retransmissions would need.
    assert medium.stats.transmitted_by_kind["collection-data"] <= 5 * total_packets


def test_repository_downloads_everything_it_discovers():
    sim = Simulator(seed=7)
    mobility = StaticPlacement({"producer": (0, 0), "repo": (20, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    key = KeyPair.generate("/residents/producer", seed=b"producer-key")
    trust = TrustAnchorStore()
    trust.add_anchor_key(key)
    producer = build_dapes_peer(sim, medium, "producer", config=DapesConfig(), trust=trust, key=key)
    repo = build_repository(sim, medium, "repo", trust=trust)
    metadata = producer.peer.publish_collection(build_collection())
    producer.start()
    repo.start()
    sim.run(until=90.0)
    # The repository was never told to join, it discovered the collection.
    assert repo.peer.progress(metadata.collection) == 1.0
    assert repo.peer.collections_served == 1


def test_carrier_delivers_collection_across_partitions():
    """A mobile carrier moves data between two segments that are never connected."""
    sim = Simulator(seed=8)
    mobility = ScriptedMobility()
    mobility.add_static_node("producer", 0.0, 0.0)
    mobility.add_static_node("remote", 300.0, 0.0)
    mobility.add_node("carrier", [(0.0, 10.0, 0.0), (60.0, 10.0, 0.0), (120.0, 290.0, 0.0), (400.0, 290.0, 0.0)])
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=50.0, loss_rate=0.05))
    key = KeyPair.generate("/residents/producer", seed=b"producer-key")
    trust = TrustAnchorStore()
    trust.add_anchor_key(key)
    config = DapesConfig()
    nodes = {
        node_id: build_dapes_peer(sim, medium, node_id, config=config, trust=trust,
                                  key=key if node_id == "producer" else None)
        for node_id in ("producer", "carrier", "remote")
    }
    metadata = nodes["producer"].peer.publish_collection(build_collection(file_size=6 * 1024))
    nodes["carrier"].peer.join(metadata.collection)
    nodes["remote"].peer.join(metadata.collection)
    for node in nodes.values():
        node.start()
    sim.run(until=400.0)
    carrier_time = nodes["carrier"].peer.download_time(metadata.collection)
    remote_time = nodes["remote"].peer.download_time(metadata.collection)
    assert carrier_time is not None and remote_time is not None
    assert remote_time > carrier_time  # the remote peer could only start after the carrier arrived


def test_state_size_and_load_counters_populate():
    sim, medium, producer, downloader, _ = build_pair()
    metadata = producer.peer.publish_collection(build_collection())
    downloader.peer.join(metadata.collection)
    producer.start()
    downloader.start()
    sim.run(until=60.0)
    assert downloader.peer.state_size_bytes > 0
    load = downloader.peer.load
    assert load.packets_downloaded > 0
    assert load.messages_sent > 0
    assert load.context_switches > 0
    assert load.system_calls > 0
    assert load.memory_overhead_mb >= 0.0
    assert producer.peer.load.interests_answered > 0
