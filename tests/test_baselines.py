"""Tests for the DHT, Bithoc and Ekta baseline implementations."""

import pytest

from repro.baselines import DhtKeySpace, DhtRegistry, SwarmDescriptor, build_bithoc_peer, build_ekta_peer
from repro.baselines.dht import circular_distance, dht_id
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


# ------------------------------------------------------------------------ DHT
def test_dht_ids_are_stable_and_distinct():
    assert dht_id("node-1") == dht_id("node-1")
    assert dht_id("node-1") != dht_id("node-2")


def test_circular_distance_wraps():
    size = 1 << 64
    assert circular_distance(0, size - 1) == 1
    assert circular_distance(5, 5) == 0


def test_keyspace_root_is_deterministic_and_member_bound():
    keyspace = DhtKeySpace()
    assert keyspace.root_of("key") is None
    for member in ("n1", "n2", "n3"):
        keyspace.add_member(member)
    root = keyspace.root_of("some/key")
    assert root in ("n1", "n2", "n3")
    assert keyspace.root_of("some/key") == root
    assert keyspace.is_root(root, "some/key")


def test_registry_publish_and_lookup():
    registry = DhtRegistry()
    registry.publish("key", "provider-1")
    registry.publish("key", "provider-2")
    registry.publish("key", "provider-1")
    assert registry.providers("key") == ["provider-1", "provider-2"]
    registry.remove_provider("key", "provider-1")
    assert registry.providers("key") == ["provider-2"]
    registry.remove_provider("key", "provider-2")
    assert registry.providers("key") == []
    assert len(registry) == 0


# ------------------------------------------------------------------ descriptor
def test_swarm_descriptor_file_mapping():
    descriptor = SwarmDescriptor("coll", total_pieces=10, piece_size=1024, files=3)
    assert descriptor.pieces_per_file == 4
    assert descriptor.file_of_piece(0) == 0
    assert descriptor.file_of_piece(4) == 1
    assert descriptor.file_of_piece(9) == 2
    with pytest.raises(IndexError):
        descriptor.file_of_piece(10)
    with pytest.raises(ValueError):
        SwarmDescriptor("coll", total_pieces=0, piece_size=1)


# --------------------------------------------------------------------- Bithoc
def build_static_world(positions, seed=1, loss_rate=0.05):
    sim = Simulator(seed=seed)
    mobility = StaticPlacement(positions)
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=loss_rate))
    return sim, medium


def test_bithoc_two_node_transfer_completes():
    sim, medium = build_static_world({"seed": (0, 0), "leech": (30, 0)})
    descriptor = SwarmDescriptor("coll", total_pieces=20, piece_size=1024, files=2)
    seed_peer = build_bithoc_peer(sim, medium, "seed", descriptor, seed_all=True)
    leech = build_bithoc_peer(sim, medium, "leech", descriptor)
    for peer in (seed_peer, leech):
        peer.set_swarm(["seed", "leech"])
        peer.start()
    sim.run(until=120.0)
    assert leech.is_complete
    assert leech.download_time() is not None
    # Overhead includes HELLO flooding, DSDV updates and TCP traffic.
    kinds = medium.stats.transmitted_by_kind
    assert kinds["bithoc-hello"] > 0 and kinds["dsdv-update"] > 0 and kinds["tcp-data"] > 0


def test_bithoc_multi_hop_transfer_through_forwarder():
    sim, medium = build_static_world({"seed": (0, 0), "relay": (50, 0), "leech": (100, 0)})
    descriptor = SwarmDescriptor("coll", total_pieces=10, piece_size=1024, files=1)
    seed_peer = build_bithoc_peer(sim, medium, "seed", descriptor, seed_all=True)
    build_bithoc_peer(sim, medium, "relay", descriptor, forwarder_only=True)
    leech = build_bithoc_peer(sim, medium, "leech", descriptor)
    for peer in (seed_peer, leech):
        peer.set_swarm(["seed", "leech"])
        peer.start()
    sim.run(until=200.0)
    assert leech.is_complete


def test_bithoc_close_neighbours_classified_by_hops():
    sim, medium = build_static_world({"seed": (0, 0), "leech": (30, 0)}, loss_rate=0.0)
    descriptor = SwarmDescriptor("coll", total_pieces=4, piece_size=512, files=1)
    seed_peer = build_bithoc_peer(sim, medium, "seed", descriptor, seed_all=True)
    leech = build_bithoc_peer(sim, medium, "leech", descriptor)
    for peer in (seed_peer, leech):
        peer.set_swarm(["seed", "leech", "ghost-far-peer"])
        peer.start()
    sim.run(until=10.0)
    assert "seed" in leech.close_neighbors()
    assert "ghost-far-peer" in leech.far_peers()


def test_bithoc_rarest_piece_selection_uses_neighbour_bitmaps():
    sim, medium = build_static_world({"a": (0, 0)})
    descriptor = SwarmDescriptor("coll", total_pieces=4, piece_size=512, files=1)
    peer = build_bithoc_peer(sim, medium, "a", descriptor)
    from repro.core import Bitmap

    neighbours = {"x": Bitmap(4, set_bits=[1, 2]), "y": Bitmap(4, set_bits=[2])}
    # Piece 2 is held by both (common), piece 1 by one (rarer among holders).
    assert peer.rarest_missing(neighbours) == 1
    assert peer.holders_of(2, neighbours) == ["x", "y"]
    assert peer.rarest_missing(neighbours, exclude=[1]) == 2


# ----------------------------------------------------------------------- Ekta
def test_ekta_two_node_transfer_completes():
    sim, medium = build_static_world({"seed": (0, 0), "leech": (30, 0)})
    descriptor = SwarmDescriptor("coll", total_pieces=20, piece_size=1024, files=2)
    keyspace = DhtKeySpace()
    seed_peer = build_ekta_peer(sim, medium, "seed", descriptor, keyspace, seed_all=True)
    leech = build_ekta_peer(sim, medium, "leech", descriptor, keyspace)
    for peer in (seed_peer, leech):
        peer.set_swarm(["seed", "leech"])
        peer.start()
    sim.run(until=200.0)
    assert leech.is_complete
    kinds = medium.stats.transmitted_by_kind
    assert kinds.get("ekta-piece", 0) >= 20


def test_ekta_publishes_and_looks_up_providers_through_dht():
    sim, medium = build_static_world({"seed": (0, 0), "leech": (30, 0), "root": (30, 30)}, loss_rate=0.0)
    descriptor = SwarmDescriptor("coll", total_pieces=8, piece_size=512, files=1)
    keyspace = DhtKeySpace()
    seed_peer = build_ekta_peer(sim, medium, "seed", descriptor, keyspace, seed_all=True)
    leech = build_ekta_peer(sim, medium, "leech", descriptor, keyspace)
    root = build_ekta_peer(sim, medium, "root", descriptor, keyspace)
    for peer in (seed_peer, leech, root):
        peer.set_swarm(["seed", "leech", "root"])
        peer.start()
    sim.run(until=120.0)
    # Whoever is the root for the file key holds a provider record for the seed.
    key = f"{descriptor.collection_id}/file/0"
    root_id = keyspace.root_of(key)
    root_peer = {"seed": seed_peer, "leech": leech, "root": root}[root_id]
    assert "seed" in root_peer.registry.providers(key) or root_id == "seed"
    assert leech.is_complete


def test_ekta_learns_providers_from_received_pieces():
    sim, medium = build_static_world({"seed": (0, 0), "leech": (30, 0)}, loss_rate=0.0)
    descriptor = SwarmDescriptor("coll", total_pieces=6, piece_size=512, files=1)
    keyspace = DhtKeySpace()
    seed_peer = build_ekta_peer(sim, medium, "seed", descriptor, keyspace, seed_all=True)
    leech = build_ekta_peer(sim, medium, "leech", descriptor, keyspace)
    for peer in (seed_peer, leech):
        peer.set_swarm(["seed", "leech"])
        peer.start()
    sim.run(until=120.0)
    assert leech.is_complete
    assert any("seed" in providers for providers in leech._providers.values())


def test_forwarder_only_nodes_return_none():
    sim, medium = build_static_world({"f": (0, 0)})
    descriptor = SwarmDescriptor("coll", total_pieces=4, piece_size=512, files=1)
    assert build_bithoc_peer(sim, medium, "f", descriptor, forwarder_only=True) is None
    sim2, medium2 = build_static_world({"f": (0, 0)}, seed=2)
    assert build_ekta_peer(sim2, medium2, "f", descriptor, DhtKeySpace(), forwarder_only=True) is None
