"""The array-native hot path must be byte-identical to the scalar oracle.

``ChannelConfig.array_backend`` selects between two implementations of the
simulator's hot loops — vectorized NumPy (mobility ``positions_array``, the
``ArrayGridNeighborIndex`` snapshot, batched ``link_quality_array``) and the
scalar reference code.  The scalar path is the oracle: these tests assert
bit-identity at every layer (mobility coordinates, neighbor sets, per-link
losses, whole registered experiments) plus the supporting machinery — the
no-NumPy fallback, the backend selection logic, and the profiling counters
that make the array path observable.
"""

from __future__ import annotations

import json
import random
import warnings

import pytest
from hypothesis import given, settings, strategies as st

import repro.arrays as arrays
from repro.arrays import numpy_available, numpy_or_none, resolve_array_backend
from repro.experiments import ExperimentConfig, available_experiments
from repro.experiments.spec import get_experiment
from repro.experiments.sweep import run_experiment
from repro.mobility import (
    CompositeMobility,
    RandomDirectionMobility,
    RandomWaypointMobility,
    ScriptedMobility,
    StaticPlacement,
)
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, Radio, WirelessMedium
from repro.wireless.propagation import (
    LogDistancePropagation,
    ObstaclePropagation,
    UnitDiskPropagation,
)
from repro.wireless.spatial import (
    ArrayGridNeighborIndex,
    BruteForceNeighborIndex,
    GridNeighborIndex,
    build_neighbor_index,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="NumPy not installed (scalar-only environment)"
)

AREA = 200.0


# --------------------------------------------------------------- selection
def test_channel_config_validates_array_backend():
    assert ChannelConfig().array_backend == "auto"
    for choice in ("auto", "numpy", "scalar"):
        assert ChannelConfig(array_backend=choice).array_backend == choice
    with pytest.raises(ValueError):
        ChannelConfig(array_backend="cupy")
    # grid_array is a first-class neighbor_index backend.
    assert ChannelConfig(neighbor_index="grid_array").neighbor_index == "grid_array"


@requires_numpy
def test_build_neighbor_index_selects_array_grid():
    mobility = StaticPlacement({"a": (0.0, 0.0)})
    # "grid" auto-upgrades when the resolved backend is numpy (population-
    # adaptive: vectorizes only at scale)...
    auto = build_neighbor_index(ChannelConfig(neighbor_index="grid"), mobility)
    assert isinstance(auto, ArrayGridNeighborIndex)
    assert auto.scalar_query_limit == 256
    # ...while "grid_array" forces the vectorized machinery at any size.
    forced = build_neighbor_index(ChannelConfig(neighbor_index="grid_array"), mobility)
    assert isinstance(forced, ArrayGridNeighborIndex)
    assert forced.scalar_query_limit == 1
    # ...while an explicit scalar backend keeps the reference grid.
    scalar = build_neighbor_index(
        ChannelConfig(neighbor_index="grid", array_backend="scalar"), mobility
    )
    assert type(scalar) is GridNeighborIndex
    assert isinstance(
        build_neighbor_index(ChannelConfig(neighbor_index="brute"), mobility),
        BruteForceNeighborIndex,
    )


def test_missing_numpy_falls_back_to_scalar_and_warns_once(monkeypatch):
    monkeypatch.setattr(arrays, "_numpy", None)
    monkeypatch.setattr(arrays, "_warned_missing_numpy", False)
    # "auto" degrades silently: a bare install is a supported configuration.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_array_backend("auto") == "scalar"
        assert resolve_array_backend("scalar") == "scalar"
        assert arrays.numpy_or_none() is None
        assert arrays.numpy_version() is None
    # An explicit "numpy" request warns — once per process, not per medium.
    with pytest.warns(RuntimeWarning, match="falling back to the scalar"):
        assert resolve_array_backend("numpy") == "scalar"
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert resolve_array_backend("numpy") == "scalar"
    # grid_array degrades to the scalar grid instead of failing.
    index = build_neighbor_index(
        ChannelConfig(neighbor_index="grid_array"), StaticPlacement({"a": (0.0, 0.0)})
    )
    assert type(index) is GridNeighborIndex


# ------------------------------------------------- mobility bit-identity
def build_mixed_mobility(seed: int):
    """One of every mobility family under a composite, like real scenarios."""
    rng = random.Random(seed)
    mobility = CompositeMobility()
    node_ids = []
    static = StaticPlacement()
    for index in range(3):
        node_id = f"s{index}"
        static.place(node_id, rng.uniform(0, AREA), rng.uniform(0, AREA))
        mobility.assign(node_id, static)
        node_ids.append(node_id)
    walkers = RandomDirectionMobility(
        width=AREA, height=AREA, min_speed=1.0, max_speed=12.0,
        epoch_duration=5.0, rng=random.Random(seed + 1),
    )
    for index in range(4):
        node_id = f"d{index}"
        walkers.add_node(node_id)
        mobility.assign(node_id, walkers)
        node_ids.append(node_id)
    waypointers = RandomWaypointMobility(
        width=AREA, height=AREA, min_speed=1.0, max_speed=9.0,
        pause_time=2.0, rng=random.Random(seed + 2),
    )
    for index in range(4):
        node_id = f"w{index}"
        waypointers.add_node(node_id)
        mobility.assign(node_id, waypointers)
        node_ids.append(node_id)
    scripted = ScriptedMobility()
    scripted.add_node("route", [(0.0, 10.0, 10.0), (8.0, 50.0, 20.0), (8.0, 60.0, 30.0), (20.0, 5.0, 5.0)])
    mobility.assign("route", scripted)
    node_ids.append("route")
    return mobility, static, node_ids


def assert_positions_bitidentical(mobility, node_ids, time):
    coords = mobility.positions_array(tuple(node_ids), time)
    assert coords.shape == (len(node_ids), 2)
    for row, node_id in enumerate(node_ids):
        x, y = mobility.position_xy(node_id, time)
        # Bit-identity, not approximation: the array path must be usable as
        # a drop-in replacement inside byte-identical trial runs.
        assert float(coords[row, 0]) == x, (node_id, time)
        assert float(coords[row, 1]) == y, (node_id, time)


@requires_numpy
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    times=st.lists(
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False), min_size=1, max_size=10
    ),
)
def test_positions_array_bitidentical_to_position_xy(seed, times):
    mobility, _static, node_ids = build_mixed_mobility(seed)
    # Boundary timestamps of the scripted trace are the hardest case: the
    # scalar scan resolves exact waypoint times by branch order, and the
    # cached leg rows must agree.
    probe_times = list(times) + [0.0, 8.0, 20.0, 25.0]
    for when in probe_times:  # given order — possibly non-monotonic
        assert_positions_bitidentical(mobility, node_ids, when)


@requires_numpy
def test_positions_array_tracks_replans_teleports_and_churn():
    mobility, static, node_ids = build_mixed_mobility(seed=7)
    # Warm the leg caches, then force mid-leg re-plans by querying far ahead
    # (every walker re-draws several legs) and coming back.
    for when in (0.0, 60.0, 3.5, 61.0, 2.0):
        assert_positions_bitidentical(mobility, node_ids, when)
    # Teleport: a mobility mutation must invalidate cached rows.
    static.place("s0", -40.0, 99.0)
    assert_positions_bitidentical(mobility, node_ids, 2.0)
    # Membership churn: a new node and a different query order both force a
    # fresh row layout without disturbing existing nodes' trajectories.
    static.place("late", 12.0, 34.0)
    mobility.assign("late", static)
    assert_positions_bitidentical(mobility, ["late"] + node_ids, 5.0)
    assert_positions_bitidentical(mobility, list(reversed(node_ids)), 66.0)


def test_positions_array_without_numpy_matches_positions_at(monkeypatch):
    monkeypatch.setattr(arrays, "_numpy", None)
    mobility, _static, node_ids = build_mixed_mobility(seed=3)
    if numpy_available():
        # The guarded default materializes through scalar positions_at.
        coords = mobility.positions_array(tuple(node_ids), 4.0)
        for row, node_id in enumerate(node_ids):
            x, y = mobility.position_xy(node_id, 4.0)
            assert (float(coords[row, 0]), float(coords[row, 1])) == (x, y)
    else:
        with pytest.raises(RuntimeError):
            mobility.positions_array(tuple(node_ids), 4.0)


# ------------------------------------------------ spatial index equivalence
@requires_numpy
@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    radius=st.floats(min_value=1.0, max_value=150.0, allow_nan=False),
    cell_size=st.floats(min_value=5.0, max_value=120.0, allow_nan=False),
    rebuild_interval=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
    times=st.lists(
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False), min_size=1, max_size=6
    ),
    scalar_query_limit=st.sampled_from([1, 256]),
)
def test_array_grid_matches_grid_and_brute(
    seed, radius, cell_size, rebuild_interval, times, scalar_query_limit
):
    mobility, _static, node_ids = build_mixed_mobility(seed)
    brute = BruteForceNeighborIndex(mobility)
    grid = GridNeighborIndex(mobility, cell_size=cell_size, rebuild_interval=rebuild_interval)
    # scalar_query_limit=1 forces the bucketed (lexsort + searchsorted) query
    # strategy even for tiny worlds; 256 forces the whole-snapshot masks.
    array = ArrayGridNeighborIndex(
        mobility,
        cell_size=cell_size,
        rebuild_interval=rebuild_interval,
        scalar_query_limit=scalar_query_limit,
    )
    for node_id in node_ids:
        for index in (brute, grid, array):
            index.attach(node_id)
    for when in times:
        for node_id in node_ids:
            expected = brute.neighbors(node_id, radius, when)
            assert grid.neighbors(node_id, radius, when) == expected
            assert array.neighbors(node_id, radius, when) == expected
    assert array.rebuilds > 0
    if scalar_query_limit == 1:
        # Every rebuild went through the vectorized snapshot...
        assert array.array_rebuilds == array.rebuilds
    else:
        # ...while below the threshold the index is the scalar grid.
        assert array.array_rebuilds == 0


@requires_numpy
@pytest.mark.parametrize("scalar_query_limit", [1, 256])
def test_array_grid_tracks_attach_and_detach(scalar_query_limit):
    mobility = StaticPlacement({"a": (0.0, 0.0), "b": (10.0, 0.0), "c": (20.0, 0.0)})
    array = ArrayGridNeighborIndex(mobility, cell_size=25.0, scalar_query_limit=scalar_query_limit)
    for node_id in ("a", "b", "c"):
        array.attach(node_id)
    assert array.neighbors("a", 30.0, 0.0) == ["b", "c"]
    array.detach("b")
    assert array.neighbors("a", 30.0, 0.0) == ["c"]
    array.attach("b")
    # Re-attached nodes rejoin at the back of the attach order.
    assert array.neighbors("a", 30.0, 0.0) == ["c", "b"]


# --------------------------------------------- propagation link batching
def scalar_losses(model, sender_xy, positions, sender_id, receiver_ids, nominal):
    out = []
    for receiver_id in receiver_ids:
        rx, ry = positions[receiver_id]
        dx, dy = rx - sender_xy[0], ry - sender_xy[1]
        distance = (dx * dx + dy * dy) ** 0.5
        out.append(
            model.link_quality(
                sender_xy, (rx, ry), distance, nominal, None, link=(sender_id, receiver_id)
            )
        )
    return out


@requires_numpy
@pytest.mark.parametrize("sigma", [0.0, 0.4])
def test_link_quality_array_bitidentical(sigma):
    np = numpy_or_none()
    rng = random.Random(11)
    positions = {f"n{i}": (rng.uniform(0, AREA), rng.uniform(0, AREA)) for i in range(30)}
    sender_id = "n0"
    receiver_ids = [n for n in positions if n != sender_id]
    sender_xy = positions[sender_id]
    distances = np.sqrt(
        np.asarray(
            [
                (positions[r][0] - sender_xy[0]) ** 2 + (positions[r][1] - sender_xy[1]) ** 2
                for r in receiver_ids
            ]
        )
    )
    nominal = 60.0
    for model in (
        UnitDiskPropagation(),
        LogDistancePropagation({"sigma": sigma}),
    ):
        model.bind(sim=Simulator(seed=5))
        expected = scalar_losses(model, sender_xy, positions, sender_id, receiver_ids, nominal)
        batched = model.link_quality_array(np, sender_id, receiver_ids, distances, nominal)
        assert batched == expected  # None pattern and every loss, bit for bit


@requires_numpy
def test_obstacle_propagation_opts_out_of_batching():
    np = numpy_or_none()
    model = ObstaclePropagation()
    assert (
        model.link_quality_array(np, "a", ["b"], np.asarray([1.0]), 60.0) is None
    )


@requires_numpy
def test_medium_disables_array_path_when_model_opts_out():
    class OptOutModel(UnitDiskPropagation):
        def link_quality_array(self, np, sender_id, receiver_ids, distances, nominal_range):
            return None

    sim = Simulator(seed=4)
    mobility = StaticPlacement({f"n{i}": (float(i * 10), 0.0) for i in range(5)})
    medium = WirelessMedium(
        sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0)
    )
    medium.propagation = OptOutModel()
    medium._link_quality_array = medium.propagation.link_quality_array
    for node_id in mobility.node_ids:
        Radio(sim, medium, node_id)
    reachable = medium._evaluate_links("n0", 60.0, ["n1", "n2", "n3"], 0.0)
    assert [r for r, _loss in reachable] == ["n1", "n2", "n3"]
    # One opt-out disables the batched path permanently (per-pair-only model).
    assert medium._link_quality_array is None
    assert medium.vectorized_link_evaluations == 0
    assert medium.link_evaluations == 3


@requires_numpy
def test_medium_counts_vectorized_link_evaluations():
    sim = Simulator(seed=4)
    mobility = StaticPlacement({f"n{i}": (float(i * 10), 0.0) for i in range(6)})
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=60.0, loss_rate=0.0))
    for node_id in mobility.node_ids:
        Radio(sim, medium, node_id)
    assert medium._link_quality_array is not None
    reachable = medium._evaluate_links("n0", 60.0, ["n1", "n2", "n3", "n4"], 0.0)
    assert [r for r, _loss in reachable] == ["n1", "n2", "n3", "n4"]
    assert medium.vectorized_link_evaluations == 4
    assert medium.link_evaluations == 4


# ------------------------------------------- whole-experiment equivalence
def _strip_profiles(payload):
    """Drop per-trial profiles: wall-clock metrics differ run to run, and
    the array/scalar counters (array_rebuilds, vectorized_link_evaluations)
    differ across backends by design.  Everything else must be identical."""
    for point in payload.get("points", ()):
        for trial in point.get("trial_results", ()):
            trial.pop("profile", None)
    return payload


def _spec_fingerprint(name, backend):
    spec = get_experiment(name)
    config = ExperimentConfig.tiny().with_overrides(
        max_duration=60.0, array_backend=backend
    )
    # One value per axis keeps each spec's grid tiny; every variant and the
    # full simulation stack still run.
    axes = {axis.name: (axis.values[0],) for axis in spec.axes} or None
    result = run_experiment(name, config, axes=axes)
    return _strip_profiles(json.loads(result.to_json()))


@requires_numpy
@pytest.mark.parametrize("name", available_experiments())
def test_registered_specs_byte_identical_numpy_vs_scalar(name):
    assert _spec_fingerprint(name, "numpy") == _spec_fingerprint(name, "scalar")


# -------------------------------------------------------------- profiling
@requires_numpy
def test_profile_surfaces_array_counters():
    from repro.experiments import run_protocol_trial

    config = ExperimentConfig.tiny().with_overrides(max_duration=60.0, profile=True)
    trial = run_protocol_trial("dapes", config, seed=1)
    profile = trial.profile
    assert profile is not None
    # Tiny worlds stay on the adaptive scalar strategy: the counter is
    # surfaced (the array index is active) but no vectorized snapshot ran.
    assert profile["spatial.array_rebuilds"] == 0.0
    assert profile["spatial.snapshot_rebuilds"] > 0
    assert profile["propagation.vectorized_link_evaluations"] >= 0
    forced = run_protocol_trial(
        "dapes", config.with_overrides(neighbor_index="grid_array"), seed=1
    )
    assert forced.profile["spatial.array_rebuilds"] > 0
    assert forced.profile["spatial.array_rebuilds"] == forced.profile["spatial.snapshot_rebuilds"]
    # Forcing the vectorized machinery must not change the simulation.
    assert forced.events == trial.events
    assert forced.download_times == trial.download_times
    assert forced.transmissions == trial.transmissions
    scalar = run_protocol_trial(
        "dapes", config.with_overrides(array_backend="scalar"), seed=1
    )
    assert "spatial.array_rebuilds" not in scalar.profile
    assert scalar.profile["propagation.vectorized_link_evaluations"] == 0.0


def test_diff_flags_cross_backend_comparisons():
    """`repro-experiments diff` prepends a NOTE when the two stored runs were
    produced by different array backends (wall-clock numbers not comparable)."""
    from types import SimpleNamespace

    from repro.experiments.__main__ import _cross_backend_note

    def record(backend, version):
        return SimpleNamespace(
            meta={"registries": {"array_backend": backend, "numpy_version": version}}
        )

    note = _cross_backend_note(record("scalar", None), record("numpy", "2.0.0"))
    assert note is not None
    assert "cross-backend" in note
    assert "array_backend=scalar" in note
    assert "numpy (numpy 2.0.0)" in note
    # Same backend, missing metadata, or a file-path side (record=None): no note.
    assert _cross_backend_note(record("numpy", "2.0.0"), record("numpy", "2.0.0")) is None
    assert _cross_backend_note(record(None, None), record("numpy", "2.0.0")) is None
    assert _cross_backend_note(None, record("numpy", "2.0.0")) is None
