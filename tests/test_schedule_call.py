"""Engine tests for the allocation-free ``schedule_call`` fast path."""

import pytest

from repro.simulation import Simulator
from repro.simulation.engine import SimulationError


def test_schedule_call_runs_in_fifo_order_with_schedule():
    sim = Simulator(seed=1)
    fired = []
    sim.schedule(1.0, fired.append, "handle-a")
    sim.schedule_call(1.0, fired.append, "call-b")
    sim.schedule(1.0, fired.append, "handle-c")
    sim.schedule_call(0.5, fired.append, "call-first")
    sim.run()
    assert fired == ["call-first", "handle-a", "call-b", "handle-c"]


def test_schedule_call_rejects_negative_delay():
    sim = Simulator(seed=1)
    with pytest.raises(SimulationError):
        sim.schedule_call(-0.1, print)


def test_schedule_call_counts_in_pending_and_processed():
    sim = Simulator(seed=1)
    sim.schedule_call(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0
    assert sim.events_processed == 2


def test_schedule_call_passes_positional_args():
    sim = Simulator(seed=1)
    seen = []
    sim.schedule_call(0.5, lambda a, b, c: seen.append((a, b, c)), 1, "two", 3.0)
    sim.run()
    assert seen == [(1, "two", 3.0)]
    assert sim.now == 0.5


def test_cancelled_handles_skip_but_fast_path_cannot_cancel():
    sim = Simulator(seed=1)
    fired = []
    handle = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule_call(1.0, fired.append, "fast")
    handle.cancel()
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["fast"]
    assert sim.events_processed == 1  # cancelled events never count


def test_max_events_counts_fast_path_events():
    sim = Simulator(seed=1)
    fired = []
    for index in range(5):
        sim.schedule_call(float(index + 1), fired.append, index)
    sim.run(max_events=3)
    assert fired == [0, 1, 2]
    assert sim.events_processed == 3
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_stopping_property_reflects_stop_requests():
    sim = Simulator(seed=1)
    observed = []

    def stop_now():
        observed.append(sim.stopping)
        sim.stop()
        observed.append(sim.stopping)

    sim.schedule_call(1.0, stop_now)
    sim.schedule_call(2.0, observed.append, "late")
    sim.run()
    assert observed == [False, True]
    sim.run()
    assert observed == [False, True, "late"]


def test_schedule_call_interleaves_deterministically_across_reruns():
    def run_once():
        sim = Simulator(seed=7)
        fired = []
        rng = sim.rng("test")
        for _ in range(50):
            delay = rng.uniform(0.0, 1.0)
            if rng.random() < 0.5:
                sim.schedule_call(delay, fired.append, round(delay, 9))
            else:
                sim.schedule(delay, fired.append, round(delay, 9))
        sim.run()
        return fired

    assert run_once() == run_once()
