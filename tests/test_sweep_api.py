"""The declarative sweep API: spec registry, scheduler, persistence, CLI."""

import json

import pytest

import repro.experiments.__main__ as cli
from repro.experiments import (
    Axis,
    ExperimentConfig,
    ExperimentSpec,
    RunResult,
    SweepResult,
    Variant,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiment,
)
from repro.experiments.sweep import sweep_cache_key

ALL_ARTEFACTS = {
    "Fig. 9a", "Fig. 9b", "Fig. 9c", "Fig. 9d", "Fig. 9e", "Fig. 9f",
    "Fig. 9g", "Fig. 9h", "Fig. 10a", "Fig. 10b", "Table I",
}


# ------------------------------------------------------------------ registry
def test_registry_covers_all_paper_artefacts():
    names = set(available_experiments())
    assert names >= {"fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f", "fig9gh", "fig10", "table1"}
    artefacts = set()
    for name in names:
        artefacts.update(get_experiment(name).artefacts)
    assert artefacts >= ALL_ARTEFACTS


def test_aliases_resolve_to_canonical_specs():
    assert get_experiment("fig9g").name == "fig9gh"
    assert get_experiment("fig9h").name == "fig9gh"
    assert get_experiment("fig10a").name == "fig10"
    assert get_experiment("FIG10B").name == "fig10"
    assert get_experiment("tablei").name == "table1"
    with pytest.raises(ValueError, match="unknown experiment"):
        get_experiment("fig99")


def test_register_duplicate_name_raises():
    with pytest.raises(ValueError, match="already registered"):
        register_experiment(ExperimentSpec(name="fig9a", title="dup", description=""))
    with pytest.raises(ValueError, match="already registered"):
        register_experiment(
            ExperimentSpec(name="_unique_spec", title="", description="", aliases=("fig9g",))
        )


# ------------------------------------------------------------------ planning
def test_plan_orders_axes_outer_variants_inner():
    spec = get_experiment("fig9a")
    plans = spec.plan(ExperimentConfig.tiny(), axes={"wifi_range": (40.0, 80.0)})
    assert len(plans) == 2 * 4
    assert [plan.parameters["wifi_range"] for plan in plans] == [40.0] * 4 + [80.0] * 4
    assert plans[0].config.wifi_range == 40.0
    # Spec-level overrides reach the per-point DAPES config.
    assert plans[0].config.dapes.bitmap_exchange == "before"
    assert plans[0].config.dapes.rpf_strategy == "encounter"
    assert plans[0].parameters == {
        "wifi_range": 40.0, "rpf_strategy": "encounter", "random_start": False,
    }


def test_scaled_axis_resolves_factors_against_preset():
    config = ExperimentConfig.tiny()  # num_files=1
    plans = get_experiment("fig9e").plan(
        config, axes={"wifi_range": (80.0,), "num_files_factor": (1, 3)}
    )
    assert [plan.parameters["num_files"] for plan in plans] == [1, 3]
    assert [plan.config.num_files for plan in plans] == [1, 3]
    assert plans[1].label == "Number of files=3"
    # Fig. 9f labels show the factor, parameters the resolved size.
    plans = get_experiment("fig9f").plan(
        config, axes={"wifi_range": (80.0,), "file_size_factor": (5,)}
    )
    assert plans[0].label == "File size factor=5x"
    assert plans[0].parameters["file_size"] == config.file_size * 5


def test_unknown_axis_override_raises():
    with pytest.raises(ValueError, match="no axes"):
        get_experiment("fig9a").plan(axes={"bogus": (1,)})


def test_task_count_multiplies_points_by_trials():
    config = ExperimentConfig.tiny().with_overrides(trials=3)
    spec = get_experiment("fig9a")
    assert spec.task_count(config, axes={"wifi_range": (80.0,)}) == 4 * 3


# ------------------------------------------------------------- persistence
def test_run_result_json_round_trip():
    result = RunResult(
        protocol="dapes", seed=7, parameters={"wifi_range": 60.0, "max_bitmaps": None},
        download_times={"a": 1.5}, incomplete_nodes=["b"], transmissions=12,
        transmissions_by_kind={"data": 9}, transmissions_by_protocol={"dapes": 12},
        collisions=1, losses=2, duration=100.0, events=345,
        node_loads={"a": {"memory_overhead_mb": 0.5}}, extras={"x": 1.0},
    )
    assert RunResult.from_dict(json.loads(json.dumps(result.to_dict()))) == result


def test_sweep_result_json_round_trip_includes_trials():
    config = ExperimentConfig.tiny()
    sweep = run_experiment("fig9a", config, axes={"wifi_range": (80.0,)}, workers=1)
    restored = SweepResult.from_json(sweep.to_json())
    assert restored == sweep
    assert restored.rows() == sweep.rows()
    for point, restored_point in zip(sweep.points, restored.points):
        assert restored_point.trial_results == point.trial_results
        assert len(restored_point.trial_results) == config.trials


def test_cache_key_is_content_addressed():
    spec = get_experiment("fig9a")
    tiny, small = ExperimentConfig.tiny(), ExperimentConfig.small()
    key_a = sweep_cache_key(spec, spec.plan(tiny))
    assert key_a == sweep_cache_key(spec, spec.plan(tiny))
    assert key_a != sweep_cache_key(spec, spec.plan(small))
    assert key_a != sweep_cache_key(spec, spec.plan(tiny, axes={"wifi_range": (80.0,)}))


def test_interrupted_sweep_resumes_from_persisted_tasks(tmp_path, monkeypatch):
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=180.0)
    axes = {"wifi_range": (80.0,)}
    first = run_experiment("fig9a", config, axes=axes, workers=1, out_dir=tmp_path)
    task_files = list(tmp_path.glob("fig9a-*/task-*.json"))
    assert len(task_files) == 4 * 2
    assert (tmp_path / "fig9a.json").is_file()

    # Drop one completed task (simulating a kill mid-sweep), then forbid all
    # but exactly one re-execution: resume must only run the missing task.
    task_files[0].unlink()
    import repro.experiments.sweep as sweep_module

    real_execute, budget = sweep_module._execute_task, [1]

    def limited_execute(task):
        if budget[0] <= 0:
            raise AssertionError("resume re-ran a cached task")
        budget[0] -= 1
        return real_execute(task)

    monkeypatch.setattr(sweep_module, "_execute_task", limited_execute)
    resumed = run_experiment("fig9a", config, axes=axes, workers=1, out_dir=tmp_path)
    assert resumed == first
    assert budget[0] == 0


# --------------------------------------------------------------------- CLI
def test_cli_list_prints_registry(capsys):
    assert cli.main(["list"]) == 0
    output = capsys.readouterr().out
    for name in ("fig9a", "fig9gh", "fig10", "table1"):
        assert name in output


def test_cli_axis_parsing():
    axes = cli._parse_axis_overrides(["wifi_range=40,80.5", "max_bitmaps=1,none"])
    assert axes == {"wifi_range": (40, 80.5), "max_bitmaps": (1, None)}
    with pytest.raises(SystemExit):
        cli._parse_axis_overrides(["wifi_range"])


def test_cli_run_persists_results(tmp_path, capsys):
    code = cli.main([
        "run", "fig9a", "--preset", "tiny", "--workers", "1",
        "--axis", "wifi_range=80", "--out", str(tmp_path), "--quiet",
    ])
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 9a" in output
    persisted = SweepResult.from_json((tmp_path / "fig9a.json").read_text(encoding="utf-8"))
    reference = run_experiment(
        "fig9a", ExperimentConfig.tiny(), axes={"wifi_range": (80,)}, workers=1
    )
    assert persisted == reference


def test_cli_rejects_unknown_experiment():
    with pytest.raises(ValueError, match="unknown experiment"):
        cli.main(["run", "fig99", "--preset", "tiny"])


# ------------------------------------------------------------ review fixes
def test_adhoc_spec_with_custom_trial_fn_runs_in_process():
    """Unregistered specs with bespoke trial hooks must use them, not the default."""
    from repro.experiments.metrics import RunResult

    calls = []

    def fake_trial(protocol, config, seed, parameters):
        calls.append((protocol, seed))
        return RunResult(protocol=protocol, seed=seed, parameters=dict(parameters),
                         download_times={"a": 1.0}, duration=1.0)

    spec = ExperimentSpec(
        name="_adhoc_custom_trial", title="ad-hoc", description="",
        variants=(Variant(label="only"),), trial_fn=fake_trial,
    )
    config = ExperimentConfig.tiny().with_overrides(trials=2)
    result = run_experiment(spec, config, workers=4)  # forced serial: not pool-safe
    assert len(calls) == 2
    assert result.points[0].trials == 2
    assert result.points[0].download_time == 1.0


def test_suite_with_duplicate_experiment_names_does_not_clobber_results(tmp_path):
    from repro.experiments import SweepRequest, run_suite

    spec = get_experiment("fig9a")
    tiny = ExperimentConfig.tiny()
    small_ish = ExperimentConfig.tiny().with_overrides(base_seed=99)
    axes = {"wifi_range": (80.0,)}
    run_suite(
        [
            SweepRequest(spec=spec, config=tiny, axes=axes),
            SweepRequest(spec=spec, config=small_ish, axes=axes),
        ],
        workers=1,
        out_dir=tmp_path,
    )
    aggregates = sorted(path.name for path in tmp_path.glob("fig9a-*.json"))
    assert len(aggregates) == 2  # one per request, keyed by plan hash


def test_cli_rejects_unknown_axis_names():
    with pytest.raises(SystemExit, match="matches no axis"):
        cli.main(["run", "fig9a", "--preset", "tiny", "--axis", "wifi_rage=40"])


def test_feasibility_run_empty_list_means_all_scenarios():
    import warnings as _warnings

    from repro.experiments import FeasibilityStudy

    with _warnings.catch_warnings():
        _warnings.simplefilter("ignore", DeprecationWarning)
        study = FeasibilityStudy(config=ExperimentConfig.tiny())
    result = study.run([])
    assert {point.parameters["scenario"] for point in result.points} == {1, 2, 3}
