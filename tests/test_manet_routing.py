"""Unit tests for the DSDV and DSR routing protocols."""

import pytest

from repro.ip import IpNode, IpPacket, UdpService
from repro.manet import DsdvRouting, DsrRouting
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium


def build_world(positions, routing_factory, wifi_range=60.0, seed=1, loss_rate=0.0):
    sim = Simulator(seed=seed)
    mobility = StaticPlacement(positions)
    medium = WirelessMedium(sim, mobility, ChannelConfig(wifi_range=wifi_range, loss_rate=loss_rate))
    nodes, routers = {}, {}
    for node_id in positions:
        node = IpNode(sim, medium, node_id, app_protocol="test")
        routing = routing_factory()
        node.attach_routing(routing)
        routing.start()
        nodes[node_id] = node
        routers[node_id] = routing
    return sim, medium, nodes, routers


# ----------------------------------------------------------------------- DSDV
def test_dsdv_learns_direct_neighbours():
    sim, medium, nodes, routers = build_world({"a": (0, 0), "b": (30, 0)}, lambda: DsdvRouting(update_interval=1.0))
    sim.run(until=3.0)
    assert routers["a"].next_hop("b") == "b"
    assert routers["b"].next_hop("a") == "a"


def test_dsdv_learns_multi_hop_routes():
    sim, medium, nodes, routers = build_world(
        {"a": (0, 0), "m": (50, 0), "b": (100, 0)}, lambda: DsdvRouting(update_interval=1.0)
    )
    sim.run(until=6.0)
    assert routers["a"].next_hop("b") == "m"
    assert routers["a"].route_count >= 2


def test_dsdv_prefers_fresher_sequence_numbers_and_shorter_metrics():
    routing = DsdvRouting()
    sim = Simulator(seed=1)
    mobility = StaticPlacement({"x": (0, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig())
    node = IpNode(sim, medium, "x")
    node.attach_routing(routing)
    routing._on_update("n1", ("dsdv", [("dest", 2, 10)]), "dsdv-update")
    assert routing.next_hop("dest") == "n1"
    # Same sequence, worse metric: rejected.
    routing._on_update("n2", ("dsdv", [("dest", 5, 10)]), "dsdv-update")
    assert routing.next_hop("dest") == "n1"
    # Same sequence, better metric: accepted.
    routing._on_update("n3", ("dsdv", [("dest", 0, 10)]), "dsdv-update")
    assert routing.next_hop("dest") == "n3"
    # Newer sequence wins regardless of metric.
    routing._on_update("n4", ("dsdv", [("dest", 7, 12)]), "dsdv-update")
    assert routing.next_hop("dest") == "n4"


def test_dsdv_routes_expire():
    sim, medium, nodes, routers = build_world({"a": (0, 0), "b": (30, 0)},
                                              lambda: DsdvRouting(update_interval=1.0, route_lifetime=2.0))
    sim.run(until=3.0)
    assert routers["a"].next_hop("b") == "b"
    routers["a"].stop()
    routers["b"].stop()
    sim.run(until=10.0)
    assert routers["a"].next_hop("b") is None


def test_dsdv_delivery_failure_invalidates_routes_through_broken_hop():
    sim, medium, nodes, routers = build_world({"a": (0, 0), "b": (30, 0)}, lambda: DsdvRouting(update_interval=1.0))
    sim.run(until=3.0)
    packet = IpPacket(src="a", dst="b", protocol="udp", payload=(1, "x"), payload_size=8)
    routers["a"].on_delivery_failure(packet, "b")
    assert routers["a"].next_hop("b") is None


def test_dsdv_overhead_grows_with_periodic_updates():
    sim, medium, nodes, routers = build_world({"a": (0, 0), "b": (30, 0)}, lambda: DsdvRouting(update_interval=1.0))
    sim.run(until=10.0)
    assert medium.stats.transmitted_by_kind["dsdv-update"] >= 15
    assert routers["a"].state_size_bytes > 0


# ------------------------------------------------------------------------ DSR
def test_dsr_discovers_route_on_demand():
    sim, medium, nodes, routers = build_world(
        {"a": (0, 0), "m": (50, 0), "b": (100, 0)}, lambda: DsrRouting()
    )
    udp_a = UdpService(nodes["a"])
    udp_b = UdpService(nodes["b"])
    received = []
    udp_b.bind(7, lambda src, payload, port: received.append(payload))
    assert not udp_a.send("b", 7, "first", 64)  # triggers discovery, packet queued
    sim.run(until=10.0)
    assert received == ["first"]
    route = routers["a"].route_to("b")
    assert route == ["a", "m", "b"]
    assert routers["a"].rreq_sent >= 1
    # Before discovery there was no route; afterwards data flows immediately.
    assert udp_a.send("b", 7, "second", 64)
    sim.run(until=12.0)
    assert received == ["first", "second"]


def test_dsr_source_routes_are_stamped_on_data_packets():
    sim, medium, nodes, routers = build_world(
        {"a": (0, 0), "m": (50, 0), "b": (100, 0)}, lambda: DsrRouting()
    )
    udp_a = UdpService(nodes["a"])
    UdpService(nodes["b"])
    udp_a.send("b", 7, "x", 64)
    sim.run(until=10.0)
    # The intermediate node must not have needed a discovery of its own.
    assert routers["m"].discoveries == 0


def test_dsr_reverse_route_learned_from_rreq():
    sim, medium, nodes, routers = build_world(
        {"a": (0, 0), "m": (50, 0), "b": (100, 0)}, lambda: DsrRouting()
    )
    udp_a = UdpService(nodes["a"])
    UdpService(nodes["b"])
    udp_a.send("b", 7, "x", 64)
    sim.run(until=10.0)
    assert routers["b"].route_to("a") == ["b", "m", "a"]


def test_dsr_route_error_purges_broken_link():
    sim, medium, nodes, routers = build_world(
        {"a": (0, 0), "m": (50, 0), "b": (100, 0)}, lambda: DsrRouting()
    )
    udp_a = UdpService(nodes["a"])
    UdpService(nodes["b"])
    udp_a.send("b", 7, "x", 64)
    sim.run(until=10.0)
    assert routers["a"].route_to("b") is not None
    packet = IpPacket(src="m", dst="b", protocol="udp", payload=(7, "y"), payload_size=8)
    routers["m"].on_delivery_failure(packet, "b")
    sim.run(until=12.0)
    # a heard the broadcast RERR for link (m, b) and dropped its cached route.
    assert routers["a"].route_to("b") is None


def test_dsr_discovery_gives_up_after_retries():
    sim, medium, nodes, routers = build_world(
        {"a": (0, 0), "b": (500, 0)}, lambda: DsrRouting(discovery_timeout=0.5, max_discovery_retries=2)
    )
    udp_a = UdpService(nodes["a"])
    udp_a.send("b", 7, "x", 64)
    sim.run(until=10.0)
    assert routers["a"].route_to("b") is None
    assert routers["a"].rreq_sent == 3  # initial + 2 retries


def test_dsr_intermediate_nodes_do_not_start_discoveries_for_foreign_packets():
    routing = DsrRouting()
    sim = Simulator(seed=1)
    mobility = StaticPlacement({"m": (0, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig())
    node = IpNode(sim, medium, "m")
    node.attach_routing(routing)
    foreign = IpPacket(src="someone-else", dst="far", protocol="udp", payload=(1, "x"), payload_size=8)
    routing.on_no_route(foreign)
    assert routing.discoveries == 0


def test_dsr_route_cache_expires():
    routing = DsrRouting(route_lifetime=1.0)
    sim = Simulator(seed=1)
    mobility = StaticPlacement({"a": (0, 0)})
    medium = WirelessMedium(sim, mobility, ChannelConfig())
    node = IpNode(sim, medium, "a")
    node.attach_routing(routing)
    routing._install_route(["a", "b"], now=0.0)
    assert routing.next_hop("b") == "b"
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert routing.route_to("b") is None
