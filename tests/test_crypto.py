"""Unit tests for keys, signatures, digests, Merkle trees and trust anchors."""

import pytest

from repro.crypto import KeyPair, KeyStore, MerkleTree, TrustAnchorStore, sha256_hex, sign, verify
from repro.crypto.digest import short_digest
from repro.crypto.keys import derive_public_key
from repro.crypto.signing import public_key_matches


# ----------------------------------------------------------------------- keys
def test_key_generation_is_deterministic_with_seed():
    a = KeyPair.generate("/alice", seed=b"s")
    b = KeyPair.generate("/alice", seed=b"s")
    assert a.private_key == b.private_key
    assert a.public_key == b.public_key


def test_key_generation_without_seed_is_random():
    assert KeyPair.generate("/a").private_key != KeyPair.generate("/a").private_key


def test_public_key_derived_from_private():
    key = KeyPair.generate("/alice", seed=b"s")
    assert key.public_key == derive_public_key(key.private_key)


def test_empty_private_key_rejected():
    with pytest.raises(ValueError):
        KeyPair(owner="/a", private_key=b"")


def test_keystore_create_and_get():
    store = KeyStore()
    key = store.create("/alice", seed=b"x")
    assert store.get("/alice") is key
    assert "/alice" in store
    assert store.owners() == ["/alice"]
    with pytest.raises(KeyError):
        store.get("/bob")


# ------------------------------------------------------------------- digests
def test_sha256_hex_known_value():
    assert sha256_hex(b"") == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"


def test_sha256_hex_rejects_non_bytes():
    with pytest.raises(TypeError):
        sha256_hex("not-bytes")


def test_short_digest_truncates():
    assert short_digest(b"abc", length=8) == sha256_hex(b"abc")[:8]
    with pytest.raises(ValueError):
        short_digest(b"abc", length=0)


# ---------------------------------------------------------------- signatures
def test_sign_and_verify_roundtrip():
    key = KeyPair.generate("/alice", seed=b"s")
    signature = sign("/name", b"content", key)
    assert verify("/name", b"content", signature)


def test_signature_binds_content_to_name():
    key = KeyPair.generate("/alice", seed=b"s")
    signature = sign("/name", b"content", key)
    assert not verify("/other-name", b"content", signature)
    assert not verify("/name", b"tampered", signature)


def test_signature_from_wrong_key_fails_verification():
    alice = KeyPair.generate("/alice", seed=b"a")
    mallory = KeyPair.generate("/mallory", seed=b"m")
    signature = sign("/name", b"content", alice)
    forged = type(signature)(signer=signature.signer, public_key=mallory.public_key, value=signature.value)
    assert not verify("/name", b"content", forged)


def test_public_key_matches_helper():
    alice = KeyPair.generate("/alice", seed=b"a")
    bob = KeyPair.generate("/bob", seed=b"b")
    signature = sign("/n", b"c", alice)
    assert public_key_matches(alice, signature)
    assert not public_key_matches(bob, signature)


def test_signature_size_positive():
    key = KeyPair.generate("/alice", seed=b"a")
    assert sign("/n", b"c", key).size_bytes > 32


# -------------------------------------------------------------- merkle trees
def test_merkle_single_leaf_root_is_leaf_hash():
    tree = MerkleTree([b"only"])
    assert tree.root == tree.leaf_hash(0)
    assert tree.leaf_count == 1


def test_merkle_root_changes_with_any_leaf():
    base = MerkleTree([b"a", b"b", b"c", b"d"]).root
    tampered = MerkleTree([b"a", b"b", b"x", b"d"]).root
    assert base != tampered


def test_merkle_root_depends_on_order():
    assert MerkleTree([b"a", b"b"]).root != MerkleTree([b"b", b"a"]).root


def test_merkle_proof_verifies_for_every_leaf():
    leaves = [f"packet-{i}".encode() for i in range(7)]  # odd count exercises promotion
    tree = MerkleTree(leaves)
    for index, leaf in enumerate(leaves):
        proof = tree.proof(index)
        assert MerkleTree.verify_proof(leaf, proof, tree.root)


def test_merkle_proof_fails_for_wrong_leaf():
    leaves = [b"a", b"b", b"c", b"d"]
    tree = MerkleTree(leaves)
    proof = tree.proof(1)
    assert not MerkleTree.verify_proof(b"not-b", proof, tree.root)


def test_merkle_proof_index_out_of_range():
    tree = MerkleTree([b"a", b"b"])
    with pytest.raises(IndexError):
        tree.proof(5)


def test_merkle_empty_rejected():
    with pytest.raises(ValueError):
        MerkleTree([])


def test_merkle_root_of_convenience():
    assert MerkleTree.root_of([b"a", b"b"]) == MerkleTree([b"a", b"b"]).root


# ------------------------------------------------------------- trust anchors
def test_trust_anchor_authenticates_known_producer():
    key = KeyPair.generate("/producer", seed=b"p")
    trust = TrustAnchorStore()
    trust.add_anchor_key(key)
    signature = sign("/n", b"c", key)
    assert trust.authenticate("/n", b"c", signature)


def test_trust_anchor_rejects_unknown_signer():
    key = KeyPair.generate("/stranger", seed=b"s")
    trust = TrustAnchorStore()
    signature = sign("/n", b"c", key)
    assert not trust.authenticate("/n", b"c", signature)


def test_trust_anchor_rejects_key_mismatch():
    key = KeyPair.generate("/producer", seed=b"p")
    other = KeyPair.generate("/producer", seed=b"other")
    trust = TrustAnchorStore()
    trust.add_anchor_key(other)  # trusted under a different public key
    signature = sign("/n", b"c", key)
    assert not trust.authenticate("/n", b"c", signature)


def test_endorsement_extends_trust():
    anchor = KeyPair.generate("/elder", seed=b"e")
    newcomer = KeyPair.generate("/newcomer", seed=b"n")
    trust = TrustAnchorStore()
    trust.add_anchor_key(anchor)
    assert trust.endorse("/elder", "/newcomer", newcomer.public_key)
    assert trust.is_trusted("/newcomer")
    signature = sign("/n", b"c", newcomer)
    assert trust.authenticate("/n", b"c", signature)


def test_endorsement_by_untrusted_party_rejected():
    trust = TrustAnchorStore()
    assert not trust.endorse("/nobody", "/x", "key")
    assert not trust.is_trusted("/x")
    assert len(trust) == 0
