"""Unit tests for Timer and PeriodicTimer."""

from repro.simulation import PeriodicTimer, Simulator, Timer


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]
    assert not timer.running


def test_timer_restart_replaces_previous_deadline():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(5.0)
    timer.start(1.0)
    sim.run()
    assert fired == [1.0]


def test_timer_cancel_prevents_firing():
    sim = Simulator()
    fired = []
    timer = Timer(sim, fired.append)
    timer.start(1.0, "x")
    timer.cancel()
    sim.run()
    assert fired == []


def test_timer_passes_arguments():
    sim = Simulator()
    fired = []
    timer = Timer(sim, lambda a, b=None: fired.append((a, b)))
    timer.start(1.0, "first", b="second")
    sim.run()
    assert fired == [("first", "second")]


def test_timer_expiry_property():
    sim = Simulator()
    timer = Timer(sim, lambda: None)
    assert timer.expiry is None
    timer.start(3.0)
    assert timer.expiry == 3.0


def test_periodic_timer_fires_repeatedly():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), period=1.0)
    timer.start()
    sim.run(until=4.5)
    assert fired == [1.0, 2.0, 3.0, 4.0]


def test_periodic_timer_stop():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), period=1.0)
    timer.start()
    sim.schedule(2.5, timer.stop)
    sim.run(until=10.0)
    assert fired == [1.0, 2.0]
    assert not timer.running


def test_periodic_timer_initial_delay():
    sim = Simulator()
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), period=5.0)
    timer.start(initial_delay=1.0)
    sim.run(until=7.0)
    assert fired == [1.0, 6.0]


def test_periodic_timer_callable_period_adapts():
    sim = Simulator()
    fired = []
    periods = iter([1.0, 3.0, 1.0, 1.0, 1.0])
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), period=lambda: next(periods))
    timer.start()
    sim.run(until=5.5)
    # First fire after 1.0, next after 3.0 more, then 1.0 steps.
    assert fired == [1.0, 4.0, 5.0]


def test_periodic_timer_stop_from_callback():
    sim = Simulator()
    fired = []

    def once():
        fired.append(sim.now)
        timer.stop()

    timer = PeriodicTimer(sim, once, period=1.0)
    timer.start()
    sim.run(until=10.0)
    assert fired == [1.0]


def test_periodic_timer_jitter_stays_positive():
    sim = Simulator(seed=3)
    fired = []
    timer = PeriodicTimer(sim, lambda: fired.append(sim.now), period=1.0, jitter=0.5, rng=sim.rng("jitter"))
    timer.start()
    sim.run(until=10.0)
    assert len(fired) >= 5
    gaps = [b - a for a, b in zip(fired, fired[1:])]
    assert all(0.4 <= gap <= 1.6 for gap in gaps)
