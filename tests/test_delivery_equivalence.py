"""Batched vs per-receiver frame delivery must be byte-identical.

The wireless medium's batched delivery (one completion event per
transmission) replaces the seed's per-receiver scheduling.  These tests pin
the equivalence at every level: micro-worlds exercising each MAC mechanism,
whole registered experiments (DAPES and the IP baselines), and the
serial-vs-parallel sweep path.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.sweep import run_experiment
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, Radio, WirelessMedium


def build_world(positions, delivery, wifi_range=60.0, loss_rate=0.0, seed=1, ranges=None):
    sim = Simulator(seed=seed)
    mobility = StaticPlacement(positions)
    medium = WirelessMedium(
        sim, mobility,
        ChannelConfig(wifi_range=wifi_range, loss_rate=loss_rate, delivery=delivery),
    )
    radios = {
        node: Radio(sim, medium, node, wifi_range=(ranges or {}).get(node))
        for node in positions
    }
    return sim, medium, radios


def world_fingerprint(sim, medium, radios, received):
    """Every observable of a finished micro-run, for cross-mode comparison."""
    return {
        "events": sim.events_processed,
        "now": sim.now,
        "stats": medium.stats.as_dict(),
        "retry_backlog": medium.unicast_retry_backlog,
        "received": received,
        "radio_stats": {
            node: (
                radio.stats.frames_sent,
                radio.stats.frames_received,
                radio.stats.frames_overheard,
                radio.stats.frames_lost,
                radio.stats.frames_collided,
            )
            for node, radio in radios.items()
        },
    }


def run_edge_case(delivery, case):
    """One scripted micro-scenario; returns its full fingerprint."""
    if case == "collision":
        # Hidden terminals: a and b cannot hear each other, both reach x.
        sim, medium, radios = build_world(
            {"a": (0, 0), "b": (100, 0), "x": (55, 0)}, delivery, wifi_range=60
        )
        received = []
        radios["x"].on_receive = lambda frame: received.append(frame.sender)
        radios["a"].broadcast("from-a", 1000, kind="t")
        radios["b"].broadcast("from-b", 1000, kind="t")
        sim.run()
    elif case == "three-way":
        sim, medium, radios = build_world(
            {"a": (0, 0), "b": (110, 0), "c": (55, 95), "x": (55, 30)},
            delivery, wifi_range=65,
        )
        received = []
        radios["x"].on_receive = lambda frame: received.append(frame.sender)
        for node in ("a", "b", "c"):
            radios[node].broadcast(f"from-{node}", 1000, kind="t")
        sim.run()
    elif case == "half-duplex":
        sim, medium, radios = build_world(
            {"a": (0, 0), "b": (50, 0)}, delivery, wifi_range=60,
            ranges={"a": 100.0, "b": 5.0},
        )
        received = []
        radios["b"].on_receive = lambda frame: received.append(frame.sender)
        radios["b"].broadcast("long", 5000, kind="t")
        sim.schedule(0.0001, radios["a"].broadcast, "towards-b", 1000, "t")
        sim.run()
    elif case == "csma":
        sim, medium, radios = build_world(
            {"a": (0, 0), "b": (30, 0), "c": (15, 0)}, delivery
        )
        received = []
        radios["c"].on_receive = lambda frame: received.append(frame.sender)
        radios["a"].broadcast("first", 2000, kind="t")
        sim.schedule(0.0001, radios["b"].broadcast, "second", 2000, "t")
        sim.run()
    elif case == "arq":
        sim, medium, radios = build_world(
            {"a": (0, 0), "b": (10, 0)}, delivery, loss_rate=0.4, seed=11
        )
        received = []
        radios["b"].on_receive = lambda frame: received.append(frame.payload)
        for index in range(20):
            radios["a"].unicast("b", index, 200, kind="t")
        sim.run()
    elif case == "detach-mid-flight":
        sim, medium, radios = build_world(
            {"a": (0, 0), "b": (10, 0), "c": (20, 0)}, delivery
        )
        received = []
        radios["b"].on_receive = lambda frame: received.append(("b", frame.payload))
        radios["c"].on_receive = lambda frame: received.append(("c", frame.payload))
        radios["a"].broadcast("x", 2000, kind="t")
        sim.schedule(0.0005, medium.detach, "b")  # mid-airtime
        sim.run()
    elif case == "queued-serialized":
        sim, medium, radios = build_world({"a": (0, 0), "b": (10, 0)}, delivery)
        received = []
        radios["b"].on_receive = lambda frame: received.append(frame.payload)
        for index in range(5):
            radios["a"].broadcast(index, 1000, kind="t")
        sim.run()
    else:  # pragma: no cover - test bug
        raise ValueError(case)
    return world_fingerprint(sim, medium, radios, received)


EDGE_CASES = (
    "collision",
    "three-way",
    "half-duplex",
    "csma",
    "arq",
    "detach-mid-flight",
    "queued-serialized",
)


@pytest.mark.parametrize("case", EDGE_CASES)
def test_edge_case_matrix_batched_equals_per_receiver(case):
    assert run_edge_case("batched", case) == run_edge_case("per_receiver", case)


def test_stop_mid_batch_matches_per_receiver_and_resumes():
    """sim.stop() from a delivery callback halts between receivers in both modes.

    The stopping callback also schedules a zero-delay follow-up event: on
    resume, the remaining receptions must still fire *before* it (their
    per-receiver events held older sequence numbers in the seed scheduler).
    """
    results = {}
    for delivery in ("batched", "per_receiver"):
        sim, medium, radios = build_world(
            {"a": (0, 0), "b": (10, 0), "c": (20, 0)}, delivery
        )
        received = []

        def stop_on_first(frame, sim=sim, received=received):
            received.append("b")
            sim.schedule_call(0.0, received.append, "followup")
            sim.stop()

        radios["b"].on_receive = stop_on_first
        radios["c"].on_receive = lambda frame: received.append("c")
        radios["a"].broadcast("x", 1000, kind="t")
        sim.run()
        mid = (sim.events_processed, list(received), medium.stats.deliveries)
        sim.run()  # resume: the remaining reception must still be delivered
        results[delivery] = (mid, sim.events_processed, received, medium.stats.deliveries)
    assert results["batched"] == results["per_receiver"]
    # The resumed run delivers the second receiver before the follow-up
    # event the stopping callback scheduled.
    assert results["batched"][2] == ["b", "c", "followup"]


# ------------------------------------------------------- experiment level
def _spec_fingerprint(name, delivery, workers=None):
    config = ExperimentConfig.tiny().with_overrides(max_duration=60.0, delivery=delivery)
    axes = {"wifi_range": (60.0,)} if name == "fig9a" else None
    return run_experiment(name, config, axes=axes, workers=workers).to_json()


@pytest.mark.parametrize("name", ["fig9a", "fig10"])
def test_registered_specs_byte_identical_across_delivery_modes(name):
    assert _spec_fingerprint(name, "batched") == _spec_fingerprint(name, "per_receiver")


def test_batched_delivery_serial_equals_parallel():
    serial = _spec_fingerprint("fig9a", "batched", workers=1)
    parallel = _spec_fingerprint("fig9a", "batched", workers=2)
    assert serial == parallel
