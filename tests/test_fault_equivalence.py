"""Faults must not break any byte-identity contract the simulator guarantees.

Four families of invariants, now under an *unreliable* network:

* spatial-backend equivalence — ``grid``, ``grid_array`` and ``brute``
  neighbor indices produce identical results under sustained link flapping;
* execution-mode equivalence — scalar==numpy hot paths and serial==parallel
  sweeps stay byte-identical while links drop, partitions split and heal,
  and nodes stall mid-transfer;
* recovery — a healed partition re-knits the swarm (time-to-recover
  extras), retransmission survives sustained loss, and churn kills compose
  with stalls without tripping a single runtime invariant;
* zero-fault identity — ``faults="none"`` must not even mention faults in
  its output, and enabling the invariant monitor alone must not change a
  byte of any result.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import numpy_available
from repro.experiments import ExperimentConfig, run_experiment, run_trials
from repro.experiments.runner import run_protocol_trial
from repro.faults import FaultEpisode, FaultManager, FaultModel, FaultPlan, InvariantMonitor, LINK, STALL
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, Radio, WirelessMedium

FAULT_CONFIG = dict(
    faults="link_flap",
    fault_mean_up=4.0,
    fault_mean_down=2.0,
    fault_pair_fraction=0.5,
    invariants=True,
    num_files=2,
    file_size=40_000,
    max_duration=45.0,
)

NEIGHBOR_INDICES = ("grid", "grid_array", "brute")


def run_fingerprint(config, seed=42, protocol="dapes"):
    result = run_protocol_trial(protocol, config, seed)
    return result.to_dict()


# ===================================================== spatial backends
@pytest.mark.parametrize("propagation", ["unit_disk", "log_distance"])
def test_neighbor_indices_identical_under_link_flapping(propagation):
    base = ExperimentConfig.tiny().with_overrides(propagation=propagation, **FAULT_CONFIG)
    reference = run_fingerprint(base.with_overrides(neighbor_index="grid"))
    assert reference["extras"]["faults.link_blocks"] > 0  # faults actually ran
    for index in ("grid_array", "brute"):
        candidate = run_fingerprint(base.with_overrides(neighbor_index=index))
        assert candidate == reference, f"{index} diverged from grid under faults"


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
def test_scalar_and_numpy_backends_identical_under_faults():
    base = ExperimentConfig.tiny().with_overrides(**FAULT_CONFIG)
    scalar = run_fingerprint(base.with_overrides(array_backend="scalar"))
    vectorized = run_fingerprint(base.with_overrides(array_backend="numpy"))
    assert scalar == vectorized


@pytest.mark.parametrize("protocol", ["bithoc", "ekta"])
def test_baselines_deterministic_under_faults(protocol):
    config = ExperimentConfig.tiny().with_overrides(**FAULT_CONFIG)
    assert run_fingerprint(config, protocol=protocol) == run_fingerprint(
        config, protocol=protocol
    )


def test_faults_compose_with_churn_deterministically():
    config = ExperimentConfig.tiny().with_overrides(
        churn="poisson",
        churn_mean_session=5.0,
        churn_mean_offline=2.0,
        churn_abrupt_fraction=0.5,
        **FAULT_CONFIG,
    )
    first = run_fingerprint(config)
    assert first == run_fingerprint(config)
    assert "churn.arrivals" in first["extras"]
    assert "faults.episodes" in first["extras"]


# ==================================================== serial vs parallel
def test_faults_spec_serial_parallel_identical():
    config = ExperimentConfig.tiny().with_overrides(
        trials=2, num_files=2, file_size=40_000, max_duration=45.0
    )
    axes = {"mean_down": (2.0,)}
    serial = run_experiment("faults", config, axes=axes, workers=1)
    parallel = run_experiment("faults", config, axes=axes, workers=2)
    assert serial == parallel
    for point_s, point_p in zip(serial.points, parallel.points):
        assert point_s.trial_results == point_p.trial_results
    assert serial.points[0].extras["faults.episodes"] > 0


def test_fault_trials_parallel_matches_serial():
    config = ExperimentConfig.tiny().with_overrides(trials=2, **FAULT_CONFIG)
    serial = run_trials("dapes", config, "DAPES", workers=1)
    parallel = run_trials("dapes", config, "DAPES", workers=2)
    assert serial == parallel


# ============================================================== recovery
def test_partition_heal_rediscovery_and_recovery_metrics():
    """A mid-run partition heals and the swarm re-knits: downloads complete
    and the recovery watch records a finite time-to-recover."""
    config = ExperimentConfig.tiny().with_overrides(
        faults="partition",
        fault_at=1.0,
        fault_duration=5.0,
        invariants=True,
        num_files=2,
        file_size=40_000,
        max_duration=120.0,
    )
    result = run_protocol_trial("dapes", config, 7)
    assert result.extras["faults.partitions"] == 1.0
    assert result.extras["recovery.heals"] >= 1.0
    assert result.extras["recovery.recovered_partitions"] == 1.0
    assert result.extras["recovery.time_to_recover_mean"] >= 0.0
    assert result.extras["faults.active_time"] == pytest.approx(5.0)
    assert result.incomplete_nodes == []


def test_partition_spec_runs_end_to_end():
    config = ExperimentConfig.tiny().with_overrides(
        trials=1, num_files=2, file_size=40_000, max_duration=120.0,
    )
    result = run_experiment("partition", config, axes={"duration": (6.0,)})
    point = result.points[0]
    assert point.completion_ratio > 0
    # The spec's own fault_at=30.0 may land after a tiny run completes, so
    # assert the planned episode, not that it began before the sim stopped.
    assert point.extras["faults.episodes"] == 1.0


def test_retransmission_survives_sustained_degrade():
    """Interest retransmission with jittered backoff pushes a download
    through a channel that spends most of its time badly degraded."""
    config = ExperimentConfig.tiny().with_overrides(
        faults="degrade",
        fault_period=1.0,
        fault_duty=0.5,
        fault_severity=0.6,
        invariants=True,
        dapes_retransmit_jitter=0.3,
        num_files=2,
        file_size=40_000,
        max_duration=120.0,
    )
    result = run_protocol_trial("dapes", config, 11)
    assert result.extras["faults.degrade_windows"] > 0
    assert result.extras["faults.active_time"] > 0
    assert result.incomplete_nodes == []  # everyone finished despite the windows


def test_jitter_changes_nothing_when_zero():
    base = ExperimentConfig.tiny()
    jittered = base.with_overrides(dapes_retransmit_jitter=0.0)
    assert run_fingerprint(base) == run_fingerprint(jittered)


# ====================================================== stall/kill chaos
def chaos_world(seed=3):
    sim = Simulator(seed=seed)
    positions = {"a": (0.0, 0.0), "b": (30.0, 0.0), "c": (55.0, 0.0), "d": (80.0, 0.0)}
    medium = WirelessMedium(
        sim,
        StaticPlacement(positions),
        ChannelConfig(wifi_range=40.0),
    )
    radios = {node: Radio(sim, medium, node) for node in positions}
    return sim, medium, radios


class ScriptedFaults(FaultModel):
    name = "scripted-chaos"

    def __init__(self, episodes):
        super().__init__({})
        self.episodes = tuple(episodes)

    def plan(self, node_ids, horizon, stream):
        return FaultPlan(episodes=self.episodes)


@st.composite
def chaos_schedules(draw):
    """Interleaved stalls, link flaps, kills and traffic over a small world."""
    nodes = ["a", "b", "c", "d"]
    episodes = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        start = draw(st.floats(min_value=0.0, max_value=8.0))
        length = draw(st.floats(min_value=0.1, max_value=4.0))
        if draw(st.booleans()):
            episodes.append(
                FaultEpisode(STALL, start, start + length,
                             subject=draw(st.sampled_from(nodes)))
            )
        else:
            pair = draw(st.sampled_from([("a", "b"), ("b", "c"), ("c", "d")]))
            episodes.append(FaultEpisode(LINK, start, start + length, subject=pair))
    kills = draw(st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=10.0), st.sampled_from(nodes)),
        max_size=2, unique_by=lambda kill: kill[1],
    ))
    sends = draw(st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=10.0), st.sampled_from(nodes)),
        min_size=1, max_size=6,
    ))
    return episodes, kills, sends


@settings(max_examples=40, deadline=None)
@given(chaos_schedules())
def test_stall_kill_interleavings_hold_invariants(case):
    """Any interleaving of stalls, link flaps, abrupt kills and traffic must
    run to completion without a single safety violation."""
    episodes, kills, sends = case
    sim, medium, radios = chaos_world()
    manager = FaultManager(sim, medium, ScriptedFaults(episodes),
                           list(radios), horizon=20.0)
    monitor = InvariantMonitor(sim, medium, faults=manager)
    monitor.install()
    manager.activate()
    for when, node in kills:
        sim.schedule_call(when, medium.detach, node)
    killed = {node for _, node in kills}
    for index, (when, node) in enumerate(sends):
        sim.schedule_call(when, radios[node].broadcast, f"payload-{index}", 500, "t")
    sim.run()
    assert monitor.violations == []
    # Whatever was suppressed or replayed is accounted, never lost silently.
    metrics = manager.metrics()
    assert metrics["faults.replayed_frames"] <= metrics["faults.stalled_sends"]
    assert set(medium.node_ids) == set(radios) - killed


# ===================================================== zero-fault identity
def test_zero_fault_run_is_byte_identical_to_prefault_shape():
    """A faults="none" run must not even mention faults in its output."""
    config = ExperimentConfig.tiny()
    result = run_protocol_trial("dapes", config, 42)
    payload = result.to_dict()
    assert payload["extras"] == {}
    flat = str(payload)
    assert "faults." not in flat
    assert "recovery." not in flat


def test_invariant_monitor_is_pure_observation():
    """Enabling the monitor alone changes no byte of the result."""
    base = ExperimentConfig.tiny()
    monitored = base.with_overrides(invariants=True)
    assert run_fingerprint(base) == run_fingerprint(monitored)


@pytest.mark.parametrize("protocol", ["dapes", "bithoc", "ekta"])
def test_invariants_pass_on_clean_runs(protocol):
    config = ExperimentConfig.tiny().with_overrides(invariants=True)
    result = run_protocol_trial(protocol, config, 42)
    assert result.completion_ratio > 0


def test_hardening_config_fields_validated():
    with pytest.raises(ValueError, match="retransmit_jitter"):
        ExperimentConfig.tiny().with_overrides(dapes_retransmit_jitter=1.5)
