"""Leg-cached mobility evaluation must be bit-identical to the reference path.

``position_xy`` / ``positions_at`` / ``current_leg`` are the hot-path
variants the spatial index uses; these tests pin them against ``position``
for arbitrary (including non-monotonic) query orders.
"""

import random

import pytest

from repro.mobility import (
    CompositeMobility,
    Position,
    RandomDirectionMobility,
    RandomWaypointMobility,
    StaticPlacement,
)


def build_models():
    direction = RandomDirectionMobility(rng=random.Random(3))
    waypoint = RandomWaypointMobility(pause_time=1.5, rng=random.Random(4))
    for model in (direction, waypoint):
        for index in range(6):
            model.add_node(f"n{index}")
    return {"direction": direction, "waypoint": waypoint}


@pytest.mark.parametrize("kind", ["direction", "waypoint"])
def test_position_xy_bit_identical_for_random_query_order(kind):
    model = build_models()[kind]
    reference = build_models()[kind]
    rng = random.Random(99)
    times = [rng.uniform(0.0, 400.0) for _ in range(300)]
    for time in times:
        node = f"n{rng.randrange(6)}"
        x, y = model.position_xy(node, time)
        expected = reference.position(node, time)
        assert (x, y) == (expected.x, expected.y)  # bit-identical, not approx


@pytest.mark.parametrize("kind", ["direction", "waypoint"])
def test_positions_at_matches_per_node_position(kind):
    model = build_models()[kind]
    reference = build_models()[kind]
    node_ids = [f"n{index}" for index in range(6)]
    for time in (0.0, 3.7, 120.5, 50.2, 399.9):  # deliberately out of order
        coords = model.positions_at(node_ids, time)
        for node, (x, y) in zip(node_ids, coords):
            expected = reference.position(node, time)
            assert (x, y) == (expected.x, expected.y)


@pytest.mark.parametrize("kind", ["direction", "waypoint"])
def test_current_leg_evaluates_to_position(kind):
    model = build_models()[kind]
    reference = build_models()[kind]
    rng = random.Random(5)
    for _ in range(100):
        time = rng.uniform(0.0, 200.0)
        node = f"n{rng.randrange(6)}"
        t0, t1, x0, y0, vx, vy = model.current_leg(node, time)
        assert t0 <= time or t1 == t0
        clamped = min(max(time, t0), t1)
        expected = reference.position(node, time)
        assert x0 + vx * (clamped - t0) == pytest.approx(expected.x, abs=1e-9)
        assert y0 + vy * (clamped - t0) == pytest.approx(expected.y, abs=1e-9)


def test_leg_cache_invalidated_when_node_is_reregistered():
    model = RandomDirectionMobility(rng=random.Random(1))
    model.add_node("n0", initial_position=(10.0, 10.0))
    model.position("n0", 50.0)  # populate the leg cache
    version = model.mobility_version()
    model.add_node("n0", initial_position=(200.0, 200.0))
    assert model.mobility_version() > version
    assert model.position("n0", 0.0) == Position(200.0, 200.0)


def test_composite_position_xy_dispatches_and_matches():
    composite = CompositeMobility()
    static = StaticPlacement({"s": (5.0, 6.0)})
    mobile = RandomDirectionMobility(rng=random.Random(2))
    mobile.add_node("m")
    composite.assign("s", static)
    composite.assign("m", mobile)
    assert composite.position_xy("s", 12.0) == (5.0, 6.0)
    expected = composite.position("m", 12.0)
    assert composite.position_xy("m", 12.0) == (expected.x, expected.y)
    coords = composite.positions_at(["s", "m"], 30.0)
    assert coords[0] == (5.0, 6.0)
    expected = composite.position("m", 30.0)
    assert coords[1] == (expected.x, expected.y)
    with pytest.raises(KeyError):
        composite.position_xy("missing", 0.0)


def test_composite_registers_shared_model_once():
    composite = CompositeMobility()
    mobile = RandomDirectionMobility(rng=random.Random(2))
    mobile.add_node("a")
    mobile.add_node("b")
    composite.assign("a", mobile)
    composite.assign("b", mobile)
    assert len(composite._model_list) == 1
    assert composite.speed_bound() == mobile.speed_bound()
