"""Churn must not break any byte-identity contract the simulator guarantees.

Three families of invariants, now under a *changing* population:

* spatial-backend equivalence — ``grid``, ``grid_array`` and ``brute``
  neighbor indices produce identical results under sustained churn, across
  propagation models;
* execution-mode equivalence — scalar==numpy hot paths and serial==parallel
  sweeps stay byte-identical when nodes arrive, drain and die mid-run;
* liveness under fault injection — abrupt kills mid-ARQ-retry and
  mid-batched-delivery complete without raising, without orphaned events
  mutating dead state, and with the drop observable in ``orphaned_sends``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import numpy_available
from repro.experiments import ExperimentConfig, run_experiment, run_trials
from repro.experiments.runner import run_protocol_trial
from repro.mobility import StaticPlacement
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, Radio, WirelessMedium

CHURN_CONFIG = dict(
    churn="poisson",
    churn_mean_session=1.0,
    churn_mean_offline=1.0,
    churn_abrupt_fraction=0.5,
    num_files=2,
    file_size=40_000,
    max_duration=45.0,
)

NEIGHBOR_INDICES = ("grid", "grid_array", "brute")


def run_fingerprint(config, seed=42, protocol="dapes"):
    result = run_protocol_trial(protocol, config, seed)
    return result.to_dict()


# ===================================================== spatial backends
@pytest.mark.parametrize("propagation", ["unit_disk", "log_distance"])
def test_neighbor_indices_identical_under_sustained_churn(propagation):
    base = ExperimentConfig.tiny().with_overrides(propagation=propagation, **CHURN_CONFIG)
    reference = run_fingerprint(base.with_overrides(neighbor_index="grid"))
    assert reference["extras"]["churn.abrupt_kills"] > 0  # churn actually ran
    for index in ("grid_array", "brute"):
        candidate = run_fingerprint(base.with_overrides(neighbor_index=index))
        assert candidate == reference, f"{index} diverged from grid under churn"


@pytest.mark.skipif(not numpy_available(), reason="requires numpy")
def test_scalar_and_numpy_backends_identical_under_churn():
    base = ExperimentConfig.tiny().with_overrides(**CHURN_CONFIG)
    scalar = run_fingerprint(base.with_overrides(array_backend="scalar"))
    vectorized = run_fingerprint(base.with_overrides(array_backend="numpy"))
    assert scalar == vectorized


@pytest.mark.parametrize("protocol", ["bithoc", "ekta"])
def test_baselines_deterministic_under_churn(protocol):
    config = ExperimentConfig.tiny().with_overrides(**CHURN_CONFIG)
    assert run_fingerprint(config, protocol=protocol) == run_fingerprint(
        config, protocol=protocol
    )


# ==================================================== serial vs parallel
def test_churn_spec_serial_parallel_identical():
    config = ExperimentConfig.tiny().with_overrides(
        trials=2, churn_abrupt_fraction=0.5, max_duration=60.0
    )
    axes = {"mean_session": (5.0,)}
    serial = run_experiment("churn", config, axes=axes, workers=1)
    parallel = run_experiment("churn", config, axes=axes, workers=2)
    assert serial == parallel
    for point_s, point_p in zip(serial.points, parallel.points):
        assert point_s.trial_results == point_p.trial_results
    assert serial.points[0].extras["churn.arrivals"] >= 0


def test_flashcrowd_spec_runs_end_to_end():
    config = ExperimentConfig.tiny().with_overrides(trials=1, max_duration=120.0)
    result = run_experiment("flashcrowd", config, axes={"bursts": (2,)})
    point = result.points[0]
    assert point.completion_ratio > 0
    assert point.extras["churn.arrivals"] > 0


def test_churn_trials_parallel_matches_serial():
    config = ExperimentConfig.tiny().with_overrides(trials=2, **CHURN_CONFIG)
    serial = run_trials("dapes", config, "DAPES", workers=1)
    parallel = run_trials("dapes", config, "DAPES", workers=2)
    assert serial == parallel


# =============================================== kill-mid-transfer faults
def micro_world(delivery="batched", loss_rate=0.0, seed=3):
    sim = Simulator(seed=seed)
    positions = {"a": (0.0, 0.0), "b": (30.0, 0.0), "x": (15.0, 20.0)}
    medium = WirelessMedium(
        sim,
        StaticPlacement(positions),
        ChannelConfig(wifi_range=60.0, loss_rate=loss_rate, delivery=delivery),
    )
    radios = {node: Radio(sim, medium, node) for node in positions}
    return sim, medium, radios


def test_kill_mid_arq_retry_is_pruned_and_silent():
    """Detaching a sender with live ARQ state must cancel the retries."""
    sim, medium, radios = micro_world(loss_rate=0.99)
    radios["a"].unicast("b", "payload", 1000, kind="t")
    # Let the first transmission complete and the ARQ retry get scheduled.
    sim.run(until=0.002)
    assert medium.unicast_retry_backlog == 1
    medium.detach("a")
    assert medium.unicast_retry_backlog == 0  # state pruned at detach
    sim.run()  # the already-scheduled retry callback must no-op, not raise
    assert medium.unicast_retry_backlog == 0


def test_kill_destination_mid_arq_retry():
    sim, medium, radios = micro_world(loss_rate=0.99)
    radios["a"].unicast("b", "payload", 1000, kind="t")
    sim.run(until=0.002)
    assert medium.unicast_retry_backlog == 1
    medium.detach("b")
    assert medium.unicast_retry_backlog == 0
    sim.run()


@pytest.mark.parametrize("delivery", ["batched", "per_receiver"])
def test_kill_receiver_mid_delivery(delivery):
    """A receiver detached while a frame is on the air receives nothing."""
    sim, medium, radios = micro_world(delivery=delivery)
    received = []
    radios["x"].on_receive = lambda frame: received.append(frame.sender)
    airtime = radios["a"].broadcast("payload", 2000, kind="t")
    sim.schedule_call(airtime / 2, medium.detach, "x")
    sim.run()
    assert received == []


@pytest.mark.parametrize("delivery", ["batched", "per_receiver"])
def test_kill_sender_mid_delivery(delivery):
    """The sender dying mid-air must not corrupt the completion event."""
    sim, medium, radios = micro_world(delivery=delivery)
    airtime = radios["a"].broadcast("payload", 2000, kind="t")
    sim.schedule_call(airtime / 2, medium.detach, "a")
    sim.run()  # completion callback for the dead sender must no-op


def test_orphaned_send_is_counted_not_raised():
    sim, medium, radios = micro_world()
    medium.detach("a")
    assert radios["a"].broadcast("late", 500, kind="t") == 0.0
    assert medium.orphaned_sends == 1
    assert medium.neighbours_of("a") == []


def test_queued_frames_of_killed_sender_noop():
    """Frames queued behind a busy radio must no-op once the sender dies."""
    sim, medium, radios = micro_world()
    radios["a"].broadcast("first", 4000, kind="t")
    radios["a"].broadcast("queued", 4000, kind="t")  # queued behind the first
    medium.detach("a")
    sim.run()  # the deferred _begin_transmission must not raise


# =================================================== attach/detach property
@st.composite
def interleavings(draw):
    """A random attach/detach/query interleaving over a small node set."""
    nodes = [f"n{i}" for i in range(draw(st.integers(min_value=3, max_value=6)))]
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["attach", "detach", "query"]),
                st.sampled_from(nodes),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return nodes, ops


@settings(max_examples=30, deadline=None)
@given(interleavings())
def test_indices_agree_under_attach_detach_interleaving(case):
    nodes, ops = case
    positions = {node: (37.0 * index % 150, 53.0 * index % 150)
                 for index, node in enumerate(nodes)}

    worlds = {}
    for index_name in NEIGHBOR_INDICES:
        sim = Simulator(seed=9)
        medium = WirelessMedium(
            sim,
            StaticPlacement(dict(positions)),
            ChannelConfig(wifi_range=80.0, neighbor_index=index_name),
        )
        radios = {node: Radio(sim, medium, node) for node in nodes}
        worlds[index_name] = (sim, medium, radios)

    attached = set(nodes)
    for action, node in ops:
        if action == "attach" and node not in attached:
            attached.add(node)
            for _, medium, radios in worlds.values():
                medium.attach(radios[node])
        elif action == "detach" and node in attached:
            attached.discard(node)
            for _, medium, radios in worlds.values():
                medium.detach(node)
        elif action == "query" and attached:
            target = node if node in attached else sorted(attached)[0]
            results = {
                name: world[1].neighbours_of(target)
                for name, world in worlds.items()
            }
            reference = results["grid"]
            assert set(reference) <= attached - {target}
            for name, neighbours in results.items():
                assert sorted(neighbours) == sorted(reference), (
                    f"{name} diverged after {action}s: {ops}"
                )
    for _, medium, _ in worlds.values():
        assert set(medium.node_ids) == attached


@settings(max_examples=15, deadline=None)
@given(interleavings())
def test_indices_agree_with_moving_nodes_under_churn(case):
    """Attach/detach interleaving with mobile nodes: grid snapshots and the
    array position caches must invalidate on every population change."""
    from repro.mobility import RandomDirectionMobility

    nodes, ops = case
    worlds = {}
    for index_name in NEIGHBOR_INDICES:
        sim = Simulator(seed=17)
        mobility = RandomDirectionMobility(
            width=150.0, height=150.0, min_speed=2.0, max_speed=10.0,
            rng=sim.rng("mobility"),
        )
        for node in nodes:
            mobility.add_node(node)
        medium = WirelessMedium(
            sim, mobility, ChannelConfig(wifi_range=60.0, neighbor_index=index_name)
        )
        radios = {node: Radio(sim, medium, node) for node in nodes}
        worlds[index_name] = (sim, medium, radios)

    attached = set(nodes)
    time = 0.0
    for action, node in ops:
        time += 0.5  # advance between ops so grid snapshots go stale
        if action == "attach" and node not in attached:
            attached.add(node)
            for _, medium, radios in worlds.values():
                medium.attach(radios[node])
        elif action == "detach" and node in attached:
            attached.discard(node)
            for _, medium, radios in worlds.values():
                medium.detach(node)
        elif action == "query" and attached:
            target = node if node in attached else sorted(attached)[0]
            results = {
                name: world[1].neighbours_of(target, time)
                for name, world in worlds.items()
            }
            reference = results["grid"]
            assert set(reference) <= attached - {target}
            for name, neighbours in results.items():
                assert sorted(neighbours) == sorted(reference), (
                    f"{name} diverged at t={time}: {ops}"
                )


# ===================================================== zero-churn identity
def test_zero_churn_run_is_byte_identical_to_prechurn_shape():
    """A churn="none" run must not even mention churn in its output."""
    config = ExperimentConfig.tiny()
    result = run_protocol_trial("dapes", config, 42)
    payload = result.to_dict()
    assert payload["extras"] == {}
    flat = str(payload)
    assert "churn" not in flat
