"""Equivalence tests for the spatial neighbor index.

The grid index must return *exactly* the neighbor sets (and ordering) of the
brute-force reference scan — first property-style over random placements,
ranges and timestamps, then end-to-end: a fixed-seed trial must produce an
identical :class:`RunResult` under both medium backends.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import ExperimentConfig, run_protocol_trial
from repro.mobility import (
    CompositeMobility,
    PositionCache,
    RandomDirectionMobility,
    StaticPlacement,
)
from repro.simulation import Simulator
from repro.wireless import ChannelConfig, WirelessMedium
from repro.wireless.spatial import BruteForceNeighborIndex, GridNeighborIndex, build_neighbor_index

AREA = 200.0

coords = st.tuples(
    st.floats(min_value=-50.0, max_value=AREA + 50.0, allow_nan=False),
    st.floats(min_value=-50.0, max_value=AREA + 50.0, allow_nan=False),
)


def build_mobility(static_coords, mobile_count, seed):
    """A mixed world: pinned nodes plus random-direction walkers."""
    mobility = CompositeMobility()
    static = StaticPlacement()
    node_ids = []
    for index, (x, y) in enumerate(static_coords):
        node_id = f"s{index}"
        static.place(node_id, x, y)
        mobility.assign(node_id, static)
        node_ids.append(node_id)
    walkers = RandomDirectionMobility(
        width=AREA, height=AREA, min_speed=1.0, max_speed=12.0, rng=random.Random(seed)
    )
    for index in range(mobile_count):
        node_id = f"m{index}"
        walkers.add_node(node_id)
        mobility.assign(node_id, walkers)
        node_ids.append(node_id)
    return mobility, node_ids


@settings(max_examples=60, deadline=None)
@given(
    static_coords=st.lists(coords, min_size=0, max_size=8),
    mobile_count=st.integers(min_value=0, max_value=10),
    radius=st.floats(min_value=1.0, max_value=150.0, allow_nan=False),
    cell_size=st.floats(min_value=5.0, max_value=120.0, allow_nan=False),
    rebuild_interval=st.floats(min_value=0.05, max_value=5.0, allow_nan=False),
    times=st.lists(
        st.floats(min_value=0.0, max_value=120.0, allow_nan=False), min_size=1, max_size=8
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_grid_matches_brute_force_for_random_worlds(
    static_coords, mobile_count, radius, cell_size, rebuild_interval, times, seed
):
    mobility, node_ids = build_mobility(static_coords, mobile_count, seed)
    brute = BruteForceNeighborIndex(mobility)
    grid = GridNeighborIndex(mobility, cell_size=cell_size, rebuild_interval=rebuild_interval)
    for node_id in node_ids:
        brute.attach(node_id)
        grid.attach(node_id)
    # Times arrive in the given (possibly non-monotonic) order, as the medium
    # may query the past; every node is probed at every timestamp.
    for when in times:
        for node_id in node_ids:
            expected = brute.neighbors(node_id, radius, when)
            assert grid.neighbors(node_id, radius, when) == expected


def test_grid_tracks_attach_and_detach():
    mobility = StaticPlacement({"a": (0.0, 0.0), "b": (10.0, 0.0), "c": (20.0, 0.0)})
    grid = GridNeighborIndex(mobility, cell_size=25.0)
    for node_id in ("a", "b", "c"):
        grid.attach(node_id)
    assert grid.neighbors("a", 30.0, 0.0) == ["b", "c"]
    grid.detach("b")
    assert grid.neighbors("a", 30.0, 0.0) == ["c"]
    grid.attach("b")
    # Re-attached nodes go to the back of the ordering, like a fresh radio.
    assert grid.neighbors("a", 30.0, 0.0) == ["c", "b"]


def test_grid_reuses_snapshots_within_the_rebuild_window():
    mobility = StaticPlacement({f"n{i}": (float(i), 0.0) for i in range(6)})
    grid = GridNeighborIndex(mobility, cell_size=10.0, rebuild_interval=1.0)
    for node_id in mobility.node_ids:
        grid.attach(node_id)
    grid.neighbors("n0", 3.0, 0.0)
    grid.neighbors("n0", 3.0, 0.5)
    grid.neighbors("n0", 3.0, 0.9)
    assert grid.rebuilds == 1
    grid.neighbors("n0", 3.0, 5.0)
    assert grid.rebuilds == 2


def test_position_cache_returns_model_positions():
    placement = StaticPlacement({"a": (1.0, 2.0)})
    cache = PositionCache(placement)
    first = cache.position("a", 3.0)
    assert (first.x, first.y) == (1.0, 2.0)
    assert cache.position("a", 3.0) is first
    assert cache.speed_bound() == 0.0


def test_build_neighbor_index_respects_channel_config():
    mobility = StaticPlacement({"a": (0.0, 0.0)})
    assert isinstance(
        build_neighbor_index(ChannelConfig(neighbor_index="brute"), mobility),
        BruteForceNeighborIndex,
    )
    grid = build_neighbor_index(
        ChannelConfig(neighbor_index="grid", index_cell_size=12.5), mobility
    )
    assert isinstance(grid, GridNeighborIndex)
    assert grid.cell_size == 12.5
    # Cell size defaults to the WiFi range.
    default = build_neighbor_index(ChannelConfig(wifi_range=42.0), mobility)
    assert default.cell_size == 42.0
    with pytest.raises(ValueError):
        ChannelConfig(neighbor_index="octree")


def test_medium_neighbours_identical_across_backends_with_mobility():
    def neighbour_table(backend):
        sim = Simulator(seed=99)
        mobility = CompositeMobility()
        walkers = RandomDirectionMobility(
            width=150.0, height=150.0, min_speed=2.0, max_speed=10.0, rng=sim.rng("mobility")
        )
        for index in range(12):
            walkers.add_node(f"n{index}")
            mobility.assign(f"n{index}", walkers)
        medium = WirelessMedium(
            sim, mobility, ChannelConfig(wifi_range=50.0, loss_rate=0.0, neighbor_index=backend)
        )
        from repro.wireless import Radio

        for index in range(12):
            Radio(sim, medium, f"n{index}")
        return {
            (node, when): tuple(medium.neighbours_of(node, time=when))
            for when in (0.0, 1.5, 30.0, 29.0, 120.0)
            for node in medium.node_ids
        }

    assert neighbour_table("grid") == neighbour_table("brute")


@pytest.mark.parametrize("protocol", ["dapes", "bithoc"])
def test_fixed_seed_run_result_identical_under_both_backends(protocol):
    results = {}
    for backend in ("grid", "brute"):
        config = ExperimentConfig.small().with_overrides(neighbor_index=backend)
        results[backend] = run_protocol_trial(protocol, config, seed=42)
    assert results["grid"] == results["brute"]
    assert results["grid"].transmissions > 0
