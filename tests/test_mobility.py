"""Unit tests for the mobility models."""

import math
import random

import pytest

from repro.mobility import (
    CompositeMobility,
    Position,
    RandomDirectionMobility,
    RandomWaypointMobility,
    ScriptedMobility,
    StaticPlacement,
    Waypoint,
)


def test_position_distance():
    assert Position(0, 0).distance_to(Position(3, 4)) == pytest.approx(5.0)


def test_static_placement_returns_fixed_positions():
    model = StaticPlacement({"a": (1.0, 2.0)})
    assert model.position("a", 0.0) == Position(1.0, 2.0)
    assert model.position("a", 1000.0) == Position(1.0, 2.0)


def test_static_placement_unknown_node_raises():
    with pytest.raises(KeyError):
        StaticPlacement().position("ghost", 0.0)


def test_static_placement_grid():
    model = StaticPlacement()
    model.place_grid(["a", "b", "c", "d"], width=100, height=100, spacing=50)
    positions = {model.position(n, 0.0) for n in "abcd"}
    assert len(positions) == 4


def test_random_direction_stays_inside_area():
    model = RandomDirectionMobility(width=100, height=100, rng=random.Random(1))
    model.add_node("n")
    for time in range(0, 500, 7):
        position = model.position("n", float(time))
        assert -1e-6 <= position.x <= 100 + 1e-6
        assert -1e-6 <= position.y <= 100 + 1e-6


def test_random_direction_is_deterministic_for_same_rng_seed():
    a = RandomDirectionMobility(rng=random.Random(5))
    b = RandomDirectionMobility(rng=random.Random(5))
    a.add_node("n")
    b.add_node("n")
    for time in (0.0, 10.0, 100.0, 250.0):
        assert a.position("n", time) == b.position("n", time)


def test_random_direction_queries_out_of_order_are_consistent():
    model = RandomDirectionMobility(rng=random.Random(2))
    model.add_node("n")
    late = model.position("n", 200.0)
    early = model.position("n", 50.0)
    late_again = model.position("n", 200.0)
    assert late == late_again
    assert isinstance(early, Position)


def test_random_direction_respects_speed_bounds():
    model = RandomDirectionMobility(width=1000, height=1000, min_speed=2.0, max_speed=10.0,
                                    rng=random.Random(3))
    model.add_node("n", initial_position=(500.0, 500.0))
    previous = model.position("n", 0.0)
    for step in range(1, 50):
        current = model.position("n", float(step))
        distance = previous.distance_to(current)
        assert distance <= 10.0 + 1e-6  # cannot exceed max speed per second
        previous = current


def test_random_direction_initial_position_respected():
    model = RandomDirectionMobility(rng=random.Random(4))
    model.add_node("n", initial_position=(10.0, 20.0))
    assert model.position("n", 0.0) == Position(10.0, 20.0)


def test_random_direction_unknown_node_raises():
    model = RandomDirectionMobility(rng=random.Random(1))
    with pytest.raises(KeyError):
        model.position("ghost", 1.0)


def test_random_direction_invalid_speed_rejected():
    with pytest.raises(ValueError):
        RandomDirectionMobility(min_speed=0.0)
    with pytest.raises(ValueError):
        RandomDirectionMobility(min_speed=5.0, max_speed=2.0)


def test_random_waypoint_stays_inside_area():
    model = RandomWaypointMobility(width=80, height=60, rng=random.Random(6))
    model.add_node("n")
    for time in range(0, 400, 5):
        position = model.position("n", float(time))
        assert 0.0 <= position.x <= 80.0
        assert 0.0 <= position.y <= 60.0


def test_random_waypoint_pause_time_keeps_node_still():
    model = RandomWaypointMobility(width=100, height=100, min_speed=5.0, max_speed=5.0,
                                   pause_time=10.0, rng=random.Random(7))
    model.add_node("n", initial_position=(0.0, 0.0))
    # Find the end of the first leg by sampling densely.
    legs = model._legs  # internal but deterministic
    model.position("n", 200.0)
    first = legs["n"][0]
    during_pause = model.position("n", first.end_time + 1.0)
    assert during_pause == first.end

def test_scripted_mobility_interpolates_linearly():
    model = ScriptedMobility()
    model.add_node("n", [Waypoint(0.0, 0.0, 0.0), Waypoint(10.0, 100.0, 0.0)])
    midpoint = model.position("n", 5.0)
    assert midpoint.x == pytest.approx(50.0)
    assert midpoint.y == pytest.approx(0.0)


def test_scripted_mobility_clamps_before_and_after_trace():
    model = ScriptedMobility()
    model.add_node("n", [(5.0, 10.0, 10.0), (15.0, 20.0, 20.0)])
    assert model.position("n", 0.0) == Position(10.0, 10.0)
    assert model.position("n", 100.0) == Position(20.0, 20.0)


def test_scripted_mobility_static_node_helper():
    model = ScriptedMobility()
    model.add_static_node("repo", 3.0, 4.0)
    assert model.position("repo", 123.0) == Position(3.0, 4.0)


def test_scripted_mobility_requires_waypoints():
    model = ScriptedMobility()
    with pytest.raises(ValueError):
        model.add_node("n", [])


def test_scripted_mobility_unknown_node_raises():
    with pytest.raises(KeyError):
        ScriptedMobility().position("ghost", 0.0)


def test_composite_mobility_dispatches_by_node():
    static = StaticPlacement({"s": (1.0, 1.0)})
    scripted = ScriptedMobility()
    scripted.add_node("m", [(0.0, 0.0, 0.0), (10.0, 10.0, 0.0)])
    composite = CompositeMobility()
    composite.assign("s", static)
    composite.assign("m", scripted)
    assert composite.position("s", 5.0) == Position(1.0, 1.0)
    assert composite.position("m", 5.0).x == pytest.approx(5.0)
    with pytest.raises(KeyError):
        composite.position("ghost", 0.0)


def test_mobility_distance_helper():
    model = StaticPlacement({"a": (0.0, 0.0), "b": (0.0, 7.0)})
    assert model.distance("a", "b", 0.0) == pytest.approx(7.0)
