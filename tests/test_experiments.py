"""Tests for the experiment harness: configs, metrics, scenarios and runners."""

import pytest

from repro.core import DapesConfig
from repro.experiments import ExperimentConfig, FeasibilityStudy, RunResult, percentile
from repro.experiments.fig10_comparison import ComparisonExperiment
from repro.experiments.fig9_bitmaps import _budget_label
from repro.experiments.fig9_multihop import _probability_label
from repro.experiments.metrics import SweepPoint, SweepResult, aggregate_trials
from repro.experiments.runner import run_protocol_trial, run_trials
from repro.experiments.scenario import build_collection, build_dapes_scenario, build_ip_scenario


# --------------------------------------------------------------------- config
def test_experiment_config_presets_are_consistent():
    paper = ExperimentConfig.paper()
    small = ExperimentConfig.small()
    tiny = ExperimentConfig.tiny()
    assert paper.total_packets == 10 * 977  # ten 1 MB files of 1 KB packets (ceil)
    assert small.total_packets < paper.total_packets
    assert tiny.downloader_count < small.downloader_count < paper.downloader_count
    assert paper.downloader_count == 23


def test_config_with_overrides_reaches_dapes_fields():
    config = ExperimentConfig.tiny().with_overrides(wifi_range=42.0, dapes_rpf_strategy="encounter")
    assert config.wifi_range == 42.0
    assert config.dapes.rpf_strategy == "encounter"
    # The original is unchanged (value semantics).
    assert ExperimentConfig.tiny().dapes.rpf_strategy == "local"


def test_dapes_config_validation():
    with pytest.raises(ValueError):
        DapesConfig(rpf_strategy="bogus")
    with pytest.raises(ValueError):
        DapesConfig(bitmap_exchange="sometimes")
    with pytest.raises(ValueError):
        DapesConfig(forwarding_probability=2.0)
    with pytest.raises(ValueError):
        DapesConfig(max_bitmaps=0)


def test_build_collection_matches_config():
    config = ExperimentConfig.tiny()
    collection = build_collection(config)
    assert len(collection.files) == config.num_files
    assert collection.total_packets == config.total_packets


# -------------------------------------------------------------------- metrics
def test_percentile_errors():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_percentile_interpolates():
    assert percentile([1, 2, 3, 4], 50) == pytest.approx(2.5)
    assert percentile([10], 90) == 10


def test_run_result_mean_counts_incomplete_as_duration():
    result = RunResult(protocol="dapes", seed=1, download_times={"a": 10.0}, incomplete_nodes=["b"], duration=100.0)
    assert result.mean_download_time == pytest.approx(55.0)
    assert result.completion_ratio == pytest.approx(0.5)


def test_aggregate_trials_uses_percentile():
    results = [
        RunResult(protocol="dapes", seed=i, download_times={"a": float(i)}, transmissions=i * 10, duration=10.0)
        for i in range(1, 11)
    ]
    point = aggregate_trials("label", {"x": 1}, results, q=90.0)
    assert point.download_time == pytest.approx(percentile([float(i) for i in range(1, 11)], 90))
    assert point.trials == 10
    with pytest.raises(ValueError):
        aggregate_trials("label", {}, [], q=90)


def test_sweep_result_rows_series_and_lookup():
    sweep = SweepResult(name="n", description="d")
    sweep.add_point(SweepPoint("A", {"wifi_range": 40}, 10.0, 100.0, 1.0, 1))
    sweep.add_point(SweepPoint("A", {"wifi_range": 80}, 8.0, 120.0, 1.0, 1))
    sweep.add_point(SweepPoint("B", {"wifi_range": 40}, 20.0, 200.0, 1.0, 1))
    assert len(sweep.rows()) == 3
    # series()/summary() are deprecated shims over ResultSet / report.to_text.
    with pytest.warns(DeprecationWarning):
        assert sweep.series("download_time")["A"] == [10.0, 8.0]
    with pytest.warns(DeprecationWarning):
        assert sweep.series("transmissions")["B"] == [200.0]
    assert sweep.point("A", wifi_range=80).download_time == 8.0
    assert sweep.point("C") is None
    with pytest.warns(DeprecationWarning):
        assert sweep.summary()  # renders without error


def test_labels_helpers():
    assert _budget_label(None) == "All bitmaps"
    assert _budget_label(1) == "1 bitmap"
    assert _budget_label(3) == "3 bitmaps"
    assert _probability_label(None) == "Single-hop"
    assert _probability_label(0.4) == "Multi-hop, forwarding probability=40%"


# ------------------------------------------------------------------- scenarios
def test_dapes_scenario_structure():
    config = ExperimentConfig.tiny()
    scenario = build_dapes_scenario(config, seed=1)
    assert len(scenario.downloader_ids) == config.downloader_count
    assert scenario.producer_id not in scenario.downloader_ids
    assert len(scenario.pure_forwarders) == config.pure_forwarders
    # Producer already holds the whole collection; downloaders hold nothing.
    assert scenario.nodes[scenario.producer_id].peer.progress(scenario.collection_id) == 1.0
    assert scenario.nodes[scenario.downloader_ids[0]].peer.progress(scenario.collection_id) == 0.0


def test_ip_scenario_structure():
    config = ExperimentConfig.tiny()
    scenario = build_ip_scenario(config, seed=1, protocol="bithoc")
    assert scenario.peers[scenario.seed_id].is_complete
    assert len(scenario.downloader_ids) == config.downloader_count
    assert all(not scenario.peers[node].is_complete for node in scenario.downloader_ids)
    with pytest.raises(ValueError):
        build_ip_scenario(config, seed=1, protocol="gnutella")


# --------------------------------------------------------------------- runners
def test_run_protocol_trial_dapes_tiny_completes():
    config = ExperimentConfig.tiny()
    result = run_protocol_trial("dapes", config, seed=3)
    assert result.protocol == "dapes"
    assert result.completion_ratio == 1.0
    assert result.transmissions > 0
    assert set(result.download_times) <= set(f"mobile-{i}" for i in range(1, 10)) | {"repo-0"}


def test_run_protocol_trial_rejects_unknown_protocol():
    with pytest.raises(ValueError):
        run_protocol_trial("gnutella", ExperimentConfig.tiny(), seed=1)


def test_run_trials_aggregates_with_label_and_parameters():
    config = ExperimentConfig.tiny().with_overrides(trials=2, max_duration=240.0)
    point = run_trials("dapes", config, "DAPES", parameters={"wifi_range": config.wifi_range})
    assert point.label == "DAPES"
    assert point.trials == 2
    assert point.parameters["wifi_range"] == config.wifi_range
    assert point.download_time > 0


def test_comparison_improvements_math():
    sweep = SweepResult(name="cmp", description="")
    sweep.add_point(SweepPoint("DAPES", {"wifi_range": 60.0}, 10.0, 100.0, 1.0, 1))
    sweep.add_point(SweepPoint("Bithoc", {"wifi_range": 60.0}, 20.0, 400.0, 1.0, 1))
    improvements = ComparisonExperiment.improvements(sweep, metric="download_time")
    assert improvements["Bithoc"][0] == pytest.approx(0.5)
    improvements = ComparisonExperiment.improvements(sweep, metric="transmissions")
    assert improvements["Bithoc"][0] == pytest.approx(0.75)


# ------------------------------------------------------------------ Table I
def test_feasibility_scenario_validation():
    study = FeasibilityStudy(config=ExperimentConfig.tiny())
    with pytest.raises(ValueError):
        study.run_scenario(4)


def test_feasibility_single_scenario_runs():
    config = ExperimentConfig.tiny().with_overrides(max_duration=300.0)
    study = FeasibilityStudy(config=config)
    outcome = study.run_scenario(2)
    assert outcome.scenario == 2
    assert outcome.transmissions > 0
    assert outcome.download_time > 0
    assert outcome.memory_overhead_mb > 0
    row = outcome.as_row()
    assert set(row) >= {"download_time_s", "transmissions", "memory_overhead_mb", "context_switches"}


# ----------------------------------------------------- metrics edge cases
def test_percentile_q100_is_maximum():
    assert percentile([3.0, 1.0, 2.0], 100) == 3.0
    assert percentile([3.0, 1.0, 2.0], 0) == 1.0


def test_percentile_single_value_any_q():
    for q in (0, 50, 90, 100):
        assert percentile([7.5], q) == 7.5


def test_mean_download_time_all_trials_incomplete_counts_duration():
    result = RunResult(
        protocol="dapes", seed=1, download_times={},
        incomplete_nodes=["a", "b"], duration=120.0,
    )
    assert result.mean_download_time == pytest.approx(120.0)
    assert result.completion_ratio == 0.0


def test_mean_download_time_no_downloaders_is_nan():
    import math

    result = RunResult(protocol="dapes", seed=1)
    assert math.isnan(result.mean_download_time)
    assert result.completion_ratio == 0.0


def test_aggregate_trials_single_trial_passes_values_through():
    result = RunResult(
        protocol="dapes", seed=1, download_times={"a": 12.0},
        transmissions=34, duration=50.0,
    )
    point = aggregate_trials("solo", {"x": 1}, [result], q=90.0)
    assert point.download_time == pytest.approx(12.0)
    assert point.transmissions == pytest.approx(34.0)
    assert point.completion_ratio == 1.0
    assert point.trials == 1


def test_aggregate_trials_all_incomplete_aggregates_durations():
    results = [
        RunResult(protocol="dapes", seed=i, download_times={},
                  incomplete_nodes=["a"], duration=100.0 + i)
        for i in range(3)
    ]
    point = aggregate_trials("stuck", {}, results, q=100.0)
    assert point.download_time == pytest.approx(102.0)  # q=100 -> slowest duration
    assert point.completion_ratio == 0.0


def test_sweep_result_point_index_matches_linear_scan_semantics():
    sweep = SweepResult(name="n", description="d")
    first = SweepPoint("A", {"wifi_range": 40, "variant": 1}, 10.0, 100.0, 1.0, 1)
    second = SweepPoint("A", {"wifi_range": 40, "variant": 2}, 8.0, 120.0, 1.0, 1)
    sweep.add_point(first)
    sweep.add_point(second)
    # Full-parameter lookups hit the exact index.
    assert sweep.point("A", wifi_range=40, variant=2) is second
    # Partial-parameter lookups keep first-match-in-insertion-order semantics.
    assert sweep.point("A", wifi_range=40) is first
    assert sweep.point("A") is first
    assert sweep.point("B", wifi_range=40) is None
    # Constructor-passed points are indexed too (from_json path).
    rebuilt = SweepResult(name="n", description="d", points=[first, second])
    assert rebuilt.point("A", wifi_range=40, variant=2) is second
